package bench

// Cross-checks for the generated state-pattern APIs (examples/gen): each
// Fig. 6 protocol is executed end to end through the sessgen-generated,
// monitor-free API and through the fully monitored Session runtime driving
// the same verified machines, and the observable results (value sequences,
// branch-label sequences, completed turns) must agree. This is the tier-1
// evidence that dropping the monitor loses no behaviour — only its cost.

import (
	"testing"

	genelev "repro/examples/gen/elevator"
	genstreaming "repro/examples/gen/streaming"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/session"
	"repro/internal/types"
)

// genStreamingValues runs the generated streaming protocol and returns the
// exact value sequence the sink observed.
func genStreamingValues(n int) ([]int32, error) {
	net := genstreaming.NewNetwork()
	var got []int32
	err := genstreaming.Run(net, genstreaming.Procs{
		S: func(s genstreaming.S0) (genstreaming.SEnd, error) {
			s1, err := s.SendValue(0)
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			loop, err := s1.SendValue(1)
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			for i := 2; i < n; i++ {
				s4, err := loop.SendValue(int32(i))
				if err != nil {
					return genstreaming.SEnd{}, err
				}
				if loop, err = s4.RecvReady(); err != nil {
					return genstreaming.SEnd{}, err
				}
			}
			s5, err := loop.SendStop()
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			s6, err := s5.RecvReady()
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			s7, err := s6.RecvReady()
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			return s7.RecvReady()
		},
		T: func(t genstreaming.T0) (genstreaming.TEnd, error) {
			for {
				t2, err := t.SendReady()
				if err != nil {
					return genstreaming.TEnd{}, err
				}
				b, err := t2.Branch()
				if err != nil {
					return genstreaming.TEnd{}, err
				}
				if b.Label == genstreaming.LabelStop {
					return b.StopNext, nil
				}
				got = append(got, b.ValuePayload)
				t = b.ValueNext
			}
		},
	})
	return got, err
}

// monitoredStreamingValues runs the same derived-AMR streaming machines
// under the fully monitored Session runtime and returns the sink's value
// sequence.
func monitoredStreamingValues(n int) ([]int32, error) {
	e := protocols.Streaming()
	opt := map[types.Role]*fsm.FSM{}
	for r, l := range e.AutoOptimised() {
		opt[r] = fsm.MustFromLocal(r, l)
	}
	sess, err := session.TopDown(e.Global, opt, core.Options{})
	if err != nil {
		return nil, err
	}
	var got []int32
	err = sess.Run(map[types.Role]func(*session.Endpoint) error{
		"s": func(ep *session.Endpoint) error {
			// The derived schedule: two pipelined values, then one value per
			// ready, then stop and drain the three outstanding readys.
			for i := 0; i < 2; i++ {
				if err := ep.Send("t", "value", int32(i)); err != nil {
					return err
				}
			}
			for i := 2; i < n; i++ {
				if err := ep.Send("t", "value", int32(i)); err != nil {
					return err
				}
				if _, err := ep.ReceiveLabel("t", "ready"); err != nil {
					return err
				}
			}
			if err := ep.Send("t", "stop", nil); err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if _, err := ep.ReceiveLabel("t", "ready"); err != nil {
					return err
				}
			}
			return nil
		},
		"t": func(ep *session.Endpoint) error {
			for {
				if err := ep.Send("s", "ready", nil); err != nil {
					return err
				}
				label, v, err := ep.Receive("s")
				if err != nil {
					return err
				}
				if label == "stop" {
					return nil
				}
				got = append(got, v.(int32))
			}
		},
	})
	return got, err
}

func TestGenStreamingCrossCheckMonitored(t *testing.T) {
	const n = 40
	gen, err := genStreamingValues(n)
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	mon, err := monitoredStreamingValues(n)
	if err != nil {
		t.Fatalf("monitored run: %v", err)
	}
	if len(gen) != n || len(mon) != n {
		t.Fatalf("lengths: generated %d, monitored %d, want %d", len(gen), len(mon), n)
	}
	for i := range gen {
		if gen[i] != mon[i] {
			t.Fatalf("value %d: generated %d, monitored %d", i, gen[i], mon[i])
		}
	}
}

// monitoredDoubleBuffering runs the plain double-buffering machines under
// the monitored runtime for the given number of FSM loop turns (one value
// per turn) and returns the values moved.
func monitoredDoubleBuffering(turns int) (int, error) {
	e := protocols.DoubleBuffering()
	sess, err := session.TopDown(e.Global, nil, core.Options{})
	if err != nil {
		return 0, err
	}
	moved := 0
	err = sess.Run(map[types.Role]func(*session.Endpoint) error{
		"k": func(ep *session.Endpoint) error {
			for i := 0; i < turns; i++ {
				if err := ep.Send("s", "ready", nil); err != nil {
					return err
				}
				v, err := ep.ReceiveLabel("s", "value")
				if err != nil {
					return err
				}
				if _, err := ep.ReceiveLabel("t", "ready"); err != nil {
					return err
				}
				if err := ep.Send("t", "value", v); err != nil {
					return err
				}
			}
			return session.ErrStopped
		},
		"s": func(ep *session.Endpoint) error {
			for i := 0; i < turns; i++ {
				if _, err := ep.ReceiveLabel("k", "ready"); err != nil {
					return err
				}
				if err := ep.Send("k", "value", nil); err != nil {
					return err
				}
			}
			return session.ErrStopped
		},
		"t": func(ep *session.Endpoint) error {
			for i := 0; i < turns; i++ {
				if err := ep.Send("k", "ready", nil); err != nil {
					return err
				}
				if _, err := ep.ReceiveLabel("k", "value"); err != nil {
					return err
				}
				moved++
			}
			return session.ErrStopped
		},
	})
	return moved, err
}

func TestGenDoubleBufferingCrossCheckMonitored(t *testing.T) {
	const n = 50 // GenDoubleBuffering runs 2n turns (two iterations)
	gen, err := GenDoubleBuffering(n)
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	mon, err := monitoredDoubleBuffering(2 * n)
	if err != nil {
		t.Fatalf("monitored run: %v", err)
	}
	if gen != mon || gen != 2*n {
		t.Fatalf("moved: generated %d, monitored %d, want %d", gen, mon, 2*n)
	}
}

// monitoredRing circulates the ring token for the given laps under the
// monitored runtime.
func monitoredRing(laps int) (int, error) {
	e := protocols.Ring()
	sess, err := session.TopDown(e.Global, nil, core.Options{})
	if err != nil {
		return 0, err
	}
	done := 0
	err = sess.Run(map[types.Role]func(*session.Endpoint) error{
		"a": func(ep *session.Endpoint) error {
			for i := 0; i < laps; i++ {
				if err := ep.Send("b", "v", nil); err != nil {
					return err
				}
				if _, err := ep.ReceiveLabel("c", "v"); err != nil {
					return err
				}
				done++
			}
			return session.ErrStopped
		},
		"b": func(ep *session.Endpoint) error {
			for i := 0; i < laps; i++ {
				if _, err := ep.ReceiveLabel("a", "v"); err != nil {
					return err
				}
				if err := ep.Send("c", "v", nil); err != nil {
					return err
				}
			}
			return session.ErrStopped
		},
		"c": func(ep *session.Endpoint) error {
			for i := 0; i < laps; i++ {
				if _, err := ep.ReceiveLabel("b", "v"); err != nil {
					return err
				}
				if err := ep.Send("a", "v", nil); err != nil {
					return err
				}
			}
			return session.ErrStopped
		},
	})
	return done, err
}

func TestGenRingCrossCheckMonitored(t *testing.T) {
	const laps = 64
	gen, err := GenRing(laps)
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	mon, err := monitoredRing(laps)
	if err != nil {
		t.Fatalf("monitored run: %v", err)
	}
	if gen != laps || mon != laps {
		t.Fatalf("laps: generated %d, monitored %d, want %d", gen, mon, laps)
	}
}

// genElevatorLabels runs the generated elevator and returns the call labels
// the controller branched on, in order.
func genElevatorLabels(calls int) ([]types.Label, error) {
	net := genelev.NewNetwork()
	var seen []types.Label
	err := genelev.Run(net, genelev.Procs{
		P: func(p genelev.P0) error {
			var err error
			for i := 0; i < calls; i++ {
				if i%2 == 0 {
					p, err = p.SendUp()
				} else {
					p, err = p.SendDown()
				}
				if err != nil {
					return err
				}
			}
			return nil
		},
		E: func(e genelev.E0) error {
			for i := 0; i < calls; i++ {
				b, err := e.Branch()
				if err != nil {
					return err
				}
				seen = append(seen, b.Label)
				switch b.Label {
				case genelev.LabelUp:
					e3, err := b.UpNext.SendOpen()
					if err != nil {
						return err
					}
					if e, err = e3.RecvDone(); err != nil {
						return err
					}
				case genelev.LabelDown:
					e5, err := b.DownNext.SendOpen()
					if err != nil {
						return err
					}
					if e, err = e5.RecvDone(); err != nil {
						return err
					}
				}
			}
			return nil
		},
		D: func(d genelev.D0) error {
			for i := 0; i < calls; i++ {
				d2, err := d.RecvOpen()
				if err != nil {
					return err
				}
				if d, err = d2.SendDone(); err != nil {
					return err
				}
			}
			return nil
		},
	})
	return seen, err
}

// monitoredElevatorLabels is the monitored counterpart of genElevatorLabels.
func monitoredElevatorLabels(calls int) ([]types.Label, error) {
	e := protocols.Elevator()
	sess, err := session.TopDown(e.Global, nil, core.Options{})
	if err != nil {
		return nil, err
	}
	var seen []types.Label
	err = sess.Run(map[types.Role]func(*session.Endpoint) error{
		"p": func(ep *session.Endpoint) error {
			for i := 0; i < calls; i++ {
				label := types.Label("up")
				if i%2 == 1 {
					label = "down"
				}
				if err := ep.Send("e", label, nil); err != nil {
					return err
				}
			}
			return session.ErrStopped
		},
		"e": func(ep *session.Endpoint) error {
			for i := 0; i < calls; i++ {
				label, _, err := ep.Receive("p")
				if err != nil {
					return err
				}
				seen = append(seen, label)
				if err := ep.Send("d", "open", nil); err != nil {
					return err
				}
				if _, err := ep.ReceiveLabel("d", "done"); err != nil {
					return err
				}
			}
			return session.ErrStopped
		},
		"d": func(ep *session.Endpoint) error {
			for i := 0; i < calls; i++ {
				if _, err := ep.ReceiveLabel("e", "open"); err != nil {
					return err
				}
				if err := ep.Send("e", "done", nil); err != nil {
					return err
				}
			}
			return session.ErrStopped
		},
	})
	return seen, err
}

func TestGenElevatorCrossCheckMonitored(t *testing.T) {
	const calls = 32
	gen, err := genElevatorLabels(calls)
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	mon, err := monitoredElevatorLabels(calls)
	if err != nil {
		t.Fatalf("monitored run: %v", err)
	}
	if len(gen) != calls || len(mon) != calls {
		t.Fatalf("lengths: generated %d, monitored %d, want %d", len(gen), len(mon), calls)
	}
	for i := range gen {
		if gen[i] != mon[i] {
			t.Fatalf("call %d: generated %s, monitored %s", i, gen[i], mon[i])
		}
	}
}

// TestGenFFTBitIdenticalToSequential runs the generated eight-worker FFT
// session and demands *bit-identical* agreement with the sequential
// transform (the RustFFT analogue): the butterfly stages perform the same
// arithmetic in the same operand order, so no tolerance is needed — any
// difference at all is a mis-wired exchange or a payload corrupted in
// flight. This is the tier-1 acceptance check for the vec<complex128>
// column sort: whole columns travel the generated monitor-free API as
// typed slices and come out exactly as the no-message-passing baseline
// computes them.
func TestGenFFTBitIdenticalToSequential(t *testing.T) {
	const rows = 64
	cols := randomMatrix(rows)
	seq := make([][]complex128, len(cols))
	for j := range seq {
		seq[j] = append([]complex128(nil), cols[j]...)
	}
	if err := fft.SequentialColumns(seq); err != nil {
		t.Fatal(err)
	}
	gen, err := GenFFT(cols)
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	for j := range gen {
		nat := fft.BitReverse(j, 8) // the parallel schedule leaves worker j's column bit-reversed
		if len(gen[j]) != rows {
			t.Fatalf("worker %d produced %d rows, want %d", j, len(gen[j]), rows)
		}
		for r := range gen[j] {
			if gen[j][r] != seq[nat][r] {
				t.Fatalf("column %d row %d: generated %v, sequential %v (must be bit-identical)", nat, r, gen[j][r], seq[nat][r])
			}
		}
	}
}

// TestGenHelpers pins the simple counting contracts of the gen.go harness
// functions driving the Fig. 6 rumpsteak-gen column.
func TestGenHelpers(t *testing.T) {
	if got, err := GenStreaming(50); err != nil || got != 50 {
		t.Errorf("GenStreaming = %d, %v", got, err)
	}
	if _, err := GenStreaming(1); err == nil {
		t.Error("GenStreaming(1) should reject n below the pipelined depth")
	}
	if got, err := GenElevator(9); err != nil || got != 9 {
		t.Errorf("GenElevator = %d, %v", got, err)
	}
}
