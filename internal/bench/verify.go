package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/kmc"
	"repro/internal/protocols"
	"repro/internal/soundbinary"
	"repro/internal/types"
)

// This file implements the Fig. 7 verification workloads: one function per
// (protocol family, verifier). Each returns an error when the verifier
// unexpectedly rejects, so benches also act as correctness checks.

// Verifier identifies one of the three tools compared in Fig. 7.
type Verifier int

const (
	// SoundBinary is the sound binary asynchronous subtyping baseline.
	SoundBinary Verifier = iota
	// KMC is the k-multiparty compatibility checker.
	KMC
	// RumpsteakSubtyping is this paper's algorithm (internal/core).
	RumpsteakSubtyping
)

func (v Verifier) String() string {
	switch v {
	case SoundBinary:
		return "soundbinary"
	case KMC:
		return "k-mc"
	case RumpsteakSubtyping:
		return "rumpsteak"
	default:
		return "unknown"
	}
}

// VerifyStreaming checks the n-unrolled streaming source with the given
// verifier (Fig. 7, first plot).
func VerifyStreaming(v Verifier, n int) error {
	sub, sup := protocols.StreamingUnrolled(n)
	switch v {
	case RumpsteakSubtyping:
		res, err := core.CheckTypes("s", sub, sup, core.Options{Bound: 2*n + 8})
		return expectOK(res.OK, err, "streaming", n)
	case SoundBinary:
		res, err := soundbinary.CheckTypes("s", sub, sup, soundbinary.Options{})
		return expectOK(res.OK, err, "streaming", n)
	case KMC:
		sys, err := kmc.NewSystem(protocols.StreamingUnrolledSystem(n)...)
		if err != nil {
			return err
		}
		res := kmc.Check(sys, n+1)
		return expectOK(res.OK, nil, "streaming", n)
	default:
		return fmt.Errorf("bench: unknown verifier %v", v)
	}
}

// VerifyNestedChoice checks Tₙ ≤ T′ₙ from Chen et al. (Fig. 7, second plot).
func VerifyNestedChoice(v Verifier, n int) error {
	sub, sup := protocols.NestedChoice(n)
	switch v {
	case RumpsteakSubtyping:
		res, err := core.CheckTypes("self", sub, sup, core.Options{Bound: 8})
		return expectOK(res.OK, err, "nested-choice", n)
	case SoundBinary:
		res, err := soundbinary.CheckTypes("self", sub, sup, soundbinary.Options{})
		return expectOK(res.OK, err, "nested-choice", n)
	case KMC:
		sys, err := kmc.NewSystem(protocols.NestedChoiceSystem(n)...)
		if err != nil {
			return err
		}
		_, res := kmc.CheckUpTo(sys, 2)
		return expectOK(res.OK, nil, "nested-choice", n)
	default:
		return fmt.Errorf("bench: unknown verifier %v", v)
	}
}

// VerifyRing checks the n-participant optimised ring (Fig. 7, third plot).
// Rumpsteak verifies each participant locally; k-MC must analyse the whole
// system at once. SoundBinary does not apply (multiparty).
func VerifyRing(v Verifier, n int) error {
	switch v {
	case RumpsteakSubtyping:
		plain, opt := protocols.RingN(n)
		for i := 0; i < n; i++ {
			r := protocols.RingRole(i)
			res, err := core.CheckTypes(r, opt[r], plain[r], core.Options{Bound: 8})
			if err := expectOK(res.OK, err, "ring", n); err != nil {
				return err
			}
		}
		return nil
	case KMC:
		sys, err := kmc.NewSystem(protocols.RingNSystem(n)...)
		if err != nil {
			return err
		}
		res := kmc.Check(sys, 1)
		return expectOK(res.OK, nil, "ring", n)
	default:
		return fmt.Errorf("bench: verifier %v does not support the multiparty ring", v)
	}
}

// VerifyKBuffering checks the n-buffer kernel (Fig. 7, fourth plot).
// SoundBinary does not apply (multiparty).
func VerifyKBuffering(v Verifier, n int) error {
	switch v {
	case RumpsteakSubtyping:
		sub, sup := protocols.KBuffering(n)
		res, err := core.CheckTypes("k", sub, sup, core.Options{Bound: 2*n + 8})
		return expectOK(res.OK, err, "k-buffering", n)
	case KMC:
		sys, err := kmc.NewSystem(protocols.KBufferingSystem(n)...)
		if err != nil {
			return err
		}
		res := kmc.Check(sys, n+1)
		return expectOK(res.OK, nil, "k-buffering", n)
	default:
		return fmt.Errorf("bench: verifier %v does not support multiparty k-buffering", v)
	}
}

func expectOK(ok bool, err error, family string, n int) error {
	if err != nil {
		return fmt.Errorf("bench: %s n=%d: %w", family, n, err)
	}
	if !ok {
		return fmt.Errorf("bench: %s n=%d: verifier rejected a valid optimisation", family, n)
	}
	return nil
}

// Cell is one Table 1 verdict.
type Cell int

const (
	// No: not expressible at all.
	No Cell = iota
	// Endpoint: expressible via endpoint types but without the
	// deadlock-freedom guarantee (the amber ✗ of Table 1).
	Endpoint
	// Yes: expressible with deadlock-freedom guaranteed.
	Yes
)

func (c Cell) String() string {
	switch c {
	case Yes:
		return "yes"
	case Endpoint:
		return "endpoint"
	default:
		return "no"
	}
}

// Table1Row is the computed verdict row for one protocol.
type Table1Row struct {
	Entry       protocols.Entry
	Sesh        Cell
	Ferrite     Cell
	MultiCrusty Cell
	Rumpsteak   Cell
	KMCCell     Cell
	SoundBin    Cell
	// AutoAMR reports that the automatic optimiser derived a certified AMR
	// improvement for at least one role of the entry — the machine-derived
	// counterpart of the AMR feature column.
	AutoAMR bool
}

// Table1 computes the expressiveness table. Framework columns (Sesh, Ferrite,
// MultiCrusty) are classified from protocol features, mirroring §4.1's
// discussion; checker columns (Rumpsteak, k-MC, SoundBinary) are computed by
// actually running each verifier.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, e := range protocols.Registry() {
		rows = append(rows, table1Row(e))
	}
	return rows
}

func table1Row(e protocols.Entry) Table1Row {
	row := Table1Row{Entry: e, AutoAMR: len(e.AutoOptimised()) > 0}

	// Binary frameworks guarantee deadlock-freedom only for two parties and
	// cannot express AMR (it breaks duality); multiparty protocols are
	// representable as unchecked endpoint types.
	binCell := func() Cell {
		switch {
		case e.Participants == 2 && !e.AMR:
			return Yes
		default:
			return Endpoint
		}
	}
	row.Sesh = binCell()
	row.Ferrite = binCell()
	// MultiCrusty supports MPST but not AMR.
	if e.AMR {
		row.MultiCrusty = Endpoint
	} else {
		row.MultiCrusty = Yes
	}

	// Rumpsteak: run the asynchronous subtyping algorithm on every optimised
	// endpoint (reflexive success when there is no optimisation but a global
	// type or consistent endpoint set exists).
	row.Rumpsteak = Yes
	for r, opt := range e.Optimised {
		res, err := core.CheckTypes(r, opt, e.Locals[r], core.Options{Bound: 8})
		if err != nil || !res.OK {
			row.Rumpsteak = Endpoint // runnable, not verifiable
			break
		}
	}

	// k-MC: run the global check on the executed system.
	sys, err := kmc.NewSystem(protocols.Machines(protocols.FSMs(e.System()))...)
	if err != nil {
		row.KMCCell = No
	} else if _, res := kmc.CheckUpTo(sys, e.KmcBound); res.OK {
		row.KMCCell = Yes
	} else {
		row.KMCCell = Endpoint
	}

	// SoundBinary: two-party protocols only.
	if e.Participants != 2 {
		row.SoundBin = No
	} else {
		row.SoundBin = Yes
		for r, opt := range e.Optimised {
			res, err := soundbinary.CheckTypes(r, opt, e.Locals[r], soundbinary.Options{})
			if err != nil || !res.OK {
				row.SoundBin = Endpoint
				break
			}
		}
	}
	return row
}

// VerifyEntrySubtyping re-verifies one registry entry with the core
// algorithm, returning per-role results; used by cmd/subtype for named
// protocols.
func VerifyEntrySubtyping(e protocols.Entry, opts core.Options) (map[types.Role]core.Result, error) {
	out := map[types.Role]core.Result{}
	for r, opt := range e.Optimised {
		sub, err := fsm.FromLocal(r, opt)
		if err != nil {
			return nil, err
		}
		sup, err := fsm.FromLocal(r, e.Locals[r])
		if err != nil {
			return nil, err
		}
		res, err := core.Check(sub, sup, opts)
		if err != nil {
			return nil, err
		}
		out[r] = res
	}
	return out, nil
}
