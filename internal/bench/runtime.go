package bench

import (
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/session"
	"repro/internal/types"
)

// Runtime identifies one of the runtime designs compared in Fig. 6: the
// paper's five, plus the RumpsteakAuto column running the machine-derived
// (internal/optimise) endpoints instead of the hand-written ones.
type Runtime int

const (
	// Sesh: binary, synchronous, per-interaction channel allocation.
	Sesh Runtime = iota
	// MultiCrusty: multiparty as a synchronous binary mesh.
	MultiCrusty
	// Ferrite: binary, asynchronous, per-interaction channel allocation.
	Ferrite
	// Rumpsteak: multiparty, asynchronous, persistent queues.
	Rumpsteak
	// RumpsteakOpt: Rumpsteak running the hand-written AMR-optimised
	// protocol, as transcribed from the paper.
	RumpsteakOpt
	// RumpsteakAuto: Rumpsteak running the AMR endpoints derived and
	// certified by the automatic optimiser — the schedule is read off the
	// derived types (see auto.go), so Fig. 6 compares hand-written against
	// machine-derived reordering head to head.
	RumpsteakAuto
	// RumpsteakGen: the sessgen-generated typed state-pattern APIs
	// (examples/gen, see gen.go): conformance enforced by the generated
	// types, no runtime monitor, message-by-message as the verified FSM
	// prescribes. This is the closest analogue of what the Rust framework
	// actually executes.
	RumpsteakGen
)

// Runtimes lists the designs in the paper's legend order (the derived-AMR
// and generated-API columns last). Every Fig. 6 workload supports every
// runtime — including FFT on the generated API, whose vec<complex128>
// column sort types the exchanges as []complex128 (examples/gen/fft); the
// old FFTRuntimes carve-out is gone.
var Runtimes = []Runtime{Sesh, MultiCrusty, Ferrite, Rumpsteak, RumpsteakOpt, RumpsteakAuto, RumpsteakGen}

func (r Runtime) String() string {
	switch r {
	case Sesh:
		return "sesh"
	case MultiCrusty:
		return "multicrusty"
	case Ferrite:
		return "ferrite"
	case Rumpsteak:
		return "rumpsteak"
	case RumpsteakOpt:
		return "rumpsteak-opt"
	case RumpsteakAuto:
		return "rumpsteak-auto"
	case RumpsteakGen:
		return "rumpsteak-gen"
	default:
		return "unknown"
	}
}

// rsNetwork is the persistent network the Rumpsteak-analogue uses: raw
// (unmonitored) session endpoints over the default lock-free SPSC ring
// substrate — persistent channels, no per-interaction allocation, matching
// the Rust framework where conformance costs nothing at run time. Each
// process grabs its endpoint once (ep) and drives it directly.
type rsNetwork struct {
	net *session.Network
}

func newRSNetwork(roles ...types.Role) *rsNetwork {
	return &rsNetwork{net: session.NewNetwork(roles...)}
}

// ep returns the (unmonitored) endpoint a process owns for the whole run.
func (n *rsNetwork) ep(role types.Role) *session.Endpoint {
	return n.net.Endpoint(role)
}

// run executes one process per role concurrently over the network's raw
// endpoints and returns the first error, errgroup-style. On error the
// network is torn down (Network.Close), so sibling processes blocked on a
// route that will never deliver fail promptly with channel.ErrClosed instead
// of deadlocking. This replaces the old panic-in-worker helpers, where one
// failed send inside a goroutine killed the whole `go test -bench` or
// cmd/fig6 process with an unrecoverable crash; a mis-wired run now fails
// the single experiment with context.
func (n *rsNetwork) run(procs map[types.Role]func(*session.Endpoint) error) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for role, f := range procs {
		wg.Add(1)
		go func(role types.Role, f func(*session.Endpoint) error) {
			defer wg.Done()
			if err := f(n.ep(role)); err != nil {
				mu.Lock()
				if first == nil {
					first = fmt.Errorf("bench: role %s: %w", role, err)
					n.net.Close()
				}
				mu.Unlock()
			}
		}(role, f)
	}
	wg.Wait()
	return first
}

// Streaming runs the streaming protocol once: the sink requests values until
// the source has delivered n, then the source stops. The optimised variant
// unrolls `unroll` value sends ahead of their readys (§4.1 uses 5).
// It returns the number of values transferred, the figure's throughput unit.
func Streaming(rt Runtime, n, unroll int) (int, error) {
	switch rt {
	case Sesh, Ferrite:
		return streamingBinary(rt == Ferrite, n)
	case MultiCrusty:
		return streamingMesh(n)
	case Rumpsteak:
		return streamingRumpsteak(n, 0)
	case RumpsteakOpt:
		return streamingRumpsteak(n, unroll)
	case RumpsteakAuto:
		u, err := autoStreamingUnroll(unroll)
		if err != nil {
			return 0, err
		}
		return streamingRumpsteak(n, u)
	case RumpsteakGen:
		// The schedule is baked into the generated types (the derived AMR
		// endpoint of examples/gen/streaming); unroll does not apply.
		return GenStreaming(n)
	default:
		return 0, fmt.Errorf("bench: unknown runtime %v", rt)
	}
}

func streamingBinary(async bool, n int) (int, error) {
	// One fresh one-shot channel per interaction, continuation-passing.
	ch := baseline.NewPair(async)
	var wg sync.WaitGroup
	wg.Add(1)
	received := 0
	go func() { // sink
		defer wg.Done()
		c := ch
		for {
			c = c.Send("ready", nil)
			label, _, next := c.Recv()
			if label == "stop" {
				return
			}
			received++
			c = next
		}
	}()
	// source
	c := ch
	for i := 0; ; i++ {
		label, _, next := c.Recv()
		if label != "ready" {
			return 0, fmt.Errorf("bench: source expected ready, got %s", label)
		}
		c = next
		if i == n {
			c.Send("stop", nil)
			break
		}
		c = c.Send("value", i)
	}
	wg.Wait()
	return received, nil
}

func streamingMesh(n int) (int, error) {
	m := baseline.NewMesh(false, "s", "t")
	var wg sync.WaitGroup
	wg.Add(1)
	received := 0
	go func() { // sink
		defer wg.Done()
		e := m.Endpoint("t")
		for {
			e.Send("s", "ready", nil)
			// Mesh endpoints error only on unknown peers; the mesh is
			// statically wired over {s, t}.
			label, _, _ := e.Recv("s")
			if label == "stop" {
				return
			}
			received++
		}
	}()
	e := m.Endpoint("s")
	for i := 0; ; i++ {
		if _, err := e.RecvLabel("t", "ready"); err != nil {
			return 0, err
		}
		if i == n {
			e.Send("t", "stop", nil)
			break
		}
		e.Send("t", "value", i)
	}
	wg.Wait()
	return received, nil
}

// streamingRumpsteak runs the protocol over the persistent ring network.
// With unroll = u > 0, the source sends its first u values before waiting for
// readys, consuming the outstanding readys before stopping — the verified
// AMR of protocols.OptimisedStreaming generalised to u unrolls. The unrolled
// run is a same-label burst, so it goes through the batched SendN fast path.
func streamingRumpsteak(n, unroll int) (int, error) {
	if unroll > n {
		unroll = n
	}
	net := newRSNetwork("s", "t")
	received := 0
	err := net.run(map[types.Role]func(*session.Endpoint) error{
		"t": func(e *session.Endpoint) error { // sink: unchanged by the source's AMR
			for {
				if err := e.Send("s", "ready", nil); err != nil {
					return err
				}
				label, _, err := e.Receive("s")
				if err != nil {
					return err
				}
				if label == "stop" {
					return nil
				}
				received++
			}
		},
		"s": func(e *session.Endpoint) error { // source
			if unroll > 0 {
				burst := make([]any, unroll)
				for i := range burst {
					burst[i] = i
				}
				if err := e.SendN("t", "value", burst); err != nil {
					return err
				}
			}
			for i := unroll; i < n; i++ {
				if _, _, err := e.Receive("t"); err != nil { // ready
					return err
				}
				if err := e.Send("t", "value", i); err != nil {
					return err
				}
			}
			// Drain the readys matching the unrolled sends, then the final
			// ready.
			for i := 0; i < unroll+1; i++ {
				if _, _, err := e.Receive("t"); err != nil {
					return err
				}
			}
			return e.Send("t", "stop", nil)
		},
	})
	if err != nil {
		return received, err
	}
	if received != n {
		return received, fmt.Errorf("bench: sink received %d of %d", received, n)
	}
	return received, nil
}

// DoubleBuffering runs the double-buffering protocol for two iterations of
// buffers of n values each (as in §4.1: "two iterations allows both of the
// kernel's buffers to be filled"), returning total values moved end to end.
// Buffers are modelled as n individual value messages per iteration, so the
// message count scales with n exactly as the figure's x-axis does.
func DoubleBuffering(rt Runtime, n int) (int, error) {
	const iters = 2
	switch rt {
	case Sesh, Ferrite:
		return doubleBufferingBinary(rt == Ferrite, n, iters)
	case MultiCrusty:
		return doubleBufferingMesh(n, iters)
	case Rumpsteak:
		return doubleBufferingRumpsteak(n, iters, false)
	case RumpsteakOpt:
		return doubleBufferingRumpsteak(n, iters, true)
	case RumpsteakAuto:
		opt, err := autoDoubleBufferingOptimised()
		if err != nil {
			return 0, err
		}
		return doubleBufferingRumpsteak(n, iters, opt)
	case RumpsteakGen:
		return GenDoubleBuffering(n)
	default:
		return 0, fmt.Errorf("bench: unknown runtime %v", rt)
	}
}

// doubleBufferingBinary decomposes the three-party protocol into two binary
// sessions (s↔k, k↔t), as §4.1 does for Sesh and Ferrite — without
// multiparty safety, and with per-interaction allocation.
func doubleBufferingBinary(async bool, n, iters int) (int, error) {
	sk := baseline.NewPair(async)
	kt := baseline.NewPair(async)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // source
		defer wg.Done()
		c := sk
		for it := 0; it < iters; it++ {
			_, _, next := c.Recv() // ready
			c = next
			for v := 0; v < n; v++ {
				c = c.Send("value", v)
			}
		}
	}()
	moved := 0
	go func() { // sink
		defer wg.Done()
		c := kt
		for it := 0; it < iters; it++ {
			c = c.Send("ready", nil)
			for v := 0; v < n; v++ {
				_, _, next := c.Recv()
				moved++
				c = next
			}
		}
	}()
	// kernel
	cs, ct := sk, kt
	for it := 0; it < iters; it++ {
		cs = cs.Send("ready", nil)
		buf := make([]any, 0, n)
		for v := 0; v < n; v++ {
			_, value, next := cs.Recv()
			buf = append(buf, value)
			cs = next
		}
		_, _, next := ct.Recv() // sink ready
		ct = next
		for _, value := range buf {
			ct = ct.Send("value", value)
		}
	}
	wg.Wait()
	return moved, nil
}

func doubleBufferingMesh(n, iters int) (int, error) {
	m := baseline.NewMesh(false, "k", "s", "t")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // source
		defer wg.Done()
		e := m.Endpoint("s")
		for it := 0; it < iters; it++ {
			e.RecvLabel("k", "ready")
			for v := 0; v < n; v++ {
				e.Send("k", "value", v)
			}
		}
	}()
	moved := 0
	go func() { // sink
		defer wg.Done()
		e := m.Endpoint("t")
		for it := 0; it < iters; it++ {
			e.Send("k", "ready", nil)
			for v := 0; v < n; v++ {
				e.RecvLabel("k", "value")
				moved++
			}
		}
	}()
	e := m.Endpoint("k")
	for it := 0; it < iters; it++ {
		e.Send("s", "ready", nil)
		buf := make([]any, 0, n)
		for v := 0; v < n; v++ {
			value, err := e.RecvLabel("s", "value")
			if err != nil {
				return 0, err
			}
			buf = append(buf, value)
		}
		if _, err := e.RecvLabel("t", "ready"); err != nil {
			return 0, err
		}
		for _, value := range buf {
			e.Send("t", "value", value)
		}
	}
	wg.Wait()
	return moved, nil
}

// doubleBufferingRumpsteak runs the kernel over the persistent ring
// network; when optimised it issues the second ready immediately (Fig. 4b),
// letting the source fill the second buffer while the sink drains the
// first. The n-value buffer transfers are same-label runs, driven through
// the batched SendN/ReceiveN endpoint operations.
func doubleBufferingRumpsteak(n, iters int, optimised bool) (int, error) {
	net := newRSNetwork("k", "s", "t")
	moved := 0
	err := net.run(map[types.Role]func(*session.Endpoint) error{
		"s": func(e *session.Endpoint) error { // source
			buf := make([]any, n)
			for v := range buf {
				buf[v] = v
			}
			for it := 0; it < iters; it++ {
				if _, _, err := e.Receive("k"); err != nil { // ready
					return err
				}
				if err := e.SendN("k", "value", buf); err != nil {
					return err
				}
			}
			return nil
		},
		"t": func(e *session.Endpoint) error { // sink
			buf := make([]any, n)
			for it := 0; it < iters; it++ {
				if err := e.Send("k", "ready", nil); err != nil {
					return err
				}
				if err := e.ReceiveN("k", "value", buf); err != nil {
					return err
				}
				moved += n
			}
			return nil
		},
		"k": func(e *session.Endpoint) error { // kernel
			if optimised {
				// Anticipate the second buffer (Fig. 4b).
				if err := e.Send("s", "ready", nil); err != nil {
					return err
				}
			}
			buf := make([]any, n)
			for it := 0; it < iters; it++ {
				if !optimised || it+1 < iters {
					if err := e.Send("s", "ready", nil); err != nil {
						return err
					}
				}
				if err := e.ReceiveN("s", "value", buf); err != nil {
					return err
				}
				if _, _, err := e.Receive("t"); err != nil { // sink ready
					return err
				}
				if err := e.SendN("t", "value", buf); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		return moved, err
	}
	return moved, nil
}

// NetworkSubstrate selects the session-network substrate for the
// Session.Run end-to-end experiments: the lock-free ring default against
// the mutex-queue baseline.
type NetworkSubstrate int

const (
	// RingSubstrate: lock-free SPSC rings (session.NewNetwork, the default).
	RingSubstrate NetworkSubstrate = iota
	// QueueSubstrate: mutex+cond queues (session.NewQueueNetwork).
	QueueSubstrate
)

func (s NetworkSubstrate) String() string {
	if s == QueueSubstrate {
		return "queue"
	}
	return "ring"
}

func (s NetworkSubstrate) network(roles ...types.Role) *session.Network {
	if s == QueueSubstrate {
		return session.NewQueueNetwork(roles...)
	}
	return session.NewNetwork(roles...)
}

// streamSess caches the verified streaming session so SessionStreaming
// measures the runtime (Session.Run on a fresh network per call), not
// projection and subtyping. The mutex serialises whole runs: each call
// rewires the shared cached session, so concurrent calls must not overlap.
var streamSess struct {
	mu   sync.Mutex
	sess *session.Session
	err  error
}

// SessionStreaming runs the streaming protocol end-to-end under the fully
// monitored session runtime — TopDown-verified FSMs, Session.Run, one
// monitor step per action — over the chosen substrate, returning the number
// of values the sink received. This is the Session.Run head-to-head behind
// the ring-vs-queue numbers in CHANGES.md. Calls are serialised (the
// verified session is shared and rewired per call).
func SessionStreaming(sub NetworkSubstrate, n int) (int, error) {
	streamSess.mu.Lock()
	defer streamSess.mu.Unlock()
	if streamSess.sess == nil && streamSess.err == nil {
		g := types.MustParseGlobal("mu x.t->s:ready.s->t:{value.x, stop.end}")
		streamSess.sess, streamSess.err = session.TopDown(g, nil, core.Options{})
	}
	if streamSess.err != nil {
		return 0, streamSess.err
	}
	s := streamSess.sess.Rewire(sub.network)
	received := 0
	err := s.Run(map[types.Role]func(*session.Endpoint) error{
		"s": func(e *session.Endpoint) error {
			for i := 0; ; i++ {
				if _, err := e.ReceiveLabel("t", "ready"); err != nil {
					return err
				}
				if i == n {
					return e.Send("t", "stop", nil)
				}
				if err := e.Send("t", "value", i); err != nil {
					return err
				}
			}
		},
		"t": func(e *session.Endpoint) error {
			for {
				if err := e.Send("s", "ready", nil); err != nil {
					return err
				}
				label, _, err := e.Receive("s")
				if err != nil {
					return err
				}
				if label == "stop" {
					return nil
				}
				received++
			}
		},
	})
	if err != nil {
		return received, err
	}
	if received != n {
		return received, fmt.Errorf("bench: session sink received %d of %d", received, n)
	}
	return received, nil
}

// FFTSequential runs the RustFFT-analogue: the row-wise 8-point transform of
// an n×8 matrix with no message passing. Returns rows processed.
func FFTSequential(n int) (int, error) {
	cols := randomMatrix(n)
	if err := fft.SequentialColumns(cols); err != nil {
		return 0, err
	}
	return n, nil
}

// FFTParallel runs the eight-process butterfly over the chosen runtime.
// Whole columns travel as single messages, as in the paper's implementation.
// The plain schedule has the lower partner of each exchange send first; the
// optimised (AMR) schedule has everyone send before receiving.
func FFTParallel(rt Runtime, n int) (int, error) {
	cols := randomMatrix(n)
	switch rt {
	case Sesh, Ferrite:
		return fftBinary(rt == Ferrite, cols)
	case MultiCrusty:
		return fftMesh(cols)
	case Rumpsteak:
		return fftRumpsteak(cols, false)
	case RumpsteakOpt:
		return fftRumpsteak(cols, true)
	case RumpsteakAuto:
		amr, err := autoFFTAllSendFirst()
		if err != nil {
			return 0, err
		}
		return fftRumpsteak(cols, amr)
	case RumpsteakGen:
		// The all-send-first AMR schedule is baked into the generated types
		// (examples/gen/fft); columns travel as typed vec<complex128>
		// payloads.
		if _, err := GenFFT(cols); err != nil {
			return 0, err
		}
		return len(cols[0]), nil
	default:
		return 0, fmt.Errorf("bench: unknown runtime %v", rt)
	}
}

func randomMatrix(n int) [][]complex128 {
	cols := make([][]complex128, 8)
	seed := uint64(1)
	for j := range cols {
		cols[j] = make([]complex128, n)
		for r := range cols[j] {
			// Cheap deterministic pseudo-random values; the arithmetic cost
			// is what matters, not the distribution.
			seed = seed*6364136223846793005 + 1442695040888963407
			cols[j][r] = complex(float64(int32(seed>>33))/1e9, float64(int32(seed>>13))/1e9)
		}
	}
	return cols
}

// fftWorker runs process j's three butterfly stages, exchanging columns via
// the provided send/recv functions, propagating any exchange error.
func fftWorker(j int, col []complex128, send func(stage, to int, col []complex128) error, recv func(stage, from int) ([]complex128, error), amr bool) ([]complex128, error) {
	cur := col
	for si, span := range fft.Stages(8) {
		p := fft.Partner(j, span)
		var theirs []complex128
		var err error
		if amr || j < p {
			// Optimised: everyone sends first. Plain: lower index sends
			// first (the global-type order), upper receives then replies.
			if err = send(si, p, cur); err != nil {
				return nil, err
			}
			theirs, err = recv(si, p)
		} else {
			if theirs, err = recv(si, p); err != nil {
				return nil, err
			}
			err = send(si, p, cur)
		}
		if err != nil {
			return nil, err
		}
		next := make([]complex128, len(cur))
		fft.StageOutput(8, j, span, cur, theirs, next)
		cur = next
	}
	return cur, nil
}

func fftRumpsteak(cols [][]complex128, amr bool) (int, error) {
	roles := make([]types.Role, 8)
	for j := range roles {
		roles[j] = types.Role(fmt.Sprintf("w%d", j))
	}
	net := newRSNetwork(roles...)
	out := make([][]complex128, 8)
	procs := map[types.Role]func(*session.Endpoint) error{}
	for j := 0; j < 8; j++ {
		j := j
		procs[roles[j]] = func(e *session.Endpoint) error {
			send := func(stage, to int, col []complex128) error {
				return e.Send(roles[to], "col", col)
			}
			recv := func(stage, from int) ([]complex128, error) {
				_, v, err := e.Receive(roles[from])
				if err != nil {
					return nil, err
				}
				col, ok := v.([]complex128)
				if !ok {
					return nil, fmt.Errorf("bench: fft %s received %T, want column", roles[j], v)
				}
				return col, nil
			}
			res, err := fftWorker(j, cols[j], send, recv, amr)
			if err != nil {
				return err
			}
			out[j] = res
			return nil
		}
	}
	if err := net.run(procs); err != nil {
		return 0, err
	}
	return len(cols[0]), nil
}

func fftMesh(cols [][]complex128) (int, error) {
	roles := make([]types.Role, 8)
	for j := range roles {
		roles[j] = types.Role(fmt.Sprintf("w%d", j))
	}
	m := baseline.NewMesh(false, roles...)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			e := m.Endpoint(roles[j])
			send := func(stage, to int, col []complex128) error {
				return e.Send(roles[to], "col", col)
			}
			recv := func(stage, from int) ([]complex128, error) {
				v, err := e.RecvLabel(roles[from], "col")
				if err != nil {
					return nil, err
				}
				return v.([]complex128), nil
			}
			// Synchronous mesh cannot have both partners send first (both
			// would block); keep the ordered schedule. Errors are unreachable
			// on the statically wired mesh but recorded for uniformity.
			_, errs[j] = fftWorker(j, cols[j], send, recv, false)
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return len(cols[0]), nil
}

// fftBinary represents the protocol as one binary session per butterfly pair
// per stage, with the extra all-pairs synchronisation §4.1 describes for the
// binary decompositions: every stage waits for all pairs of the previous
// stage to finish.
func fftBinary(async bool, cols [][]complex128) (int, error) {
	// One fresh channel per (stage, pair); plus a barrier between stages.
	chans := make([]map[[2]int]*baseline.Chan, 3)
	for si := range chans {
		chans[si] = map[[2]int]*baseline.Chan{}
	}
	for si, span := range fft.Stages(8) {
		for j := 0; j < 8; j++ {
			if p := fft.Partner(j, span); j < p {
				chans[si][[2]int{j, p}] = baseline.NewPair(async)
			}
		}
	}
	barriers := make([]*sync.WaitGroup, 3)
	for i := range barriers {
		var wg sync.WaitGroup
		wg.Add(8)
		barriers[i] = &wg
	}
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			cur := cols[j]
			for si, span := range fft.Stages(8) {
				p := fft.Partner(j, span)
				lo, hi := j, p
				if lo > hi {
					lo, hi = hi, lo
				}
				ch := chans[si][[2]int{lo, hi}]
				var theirs []complex128
				if j == lo {
					next := ch.Send("col", cur)
					_, v, _ := next.Recv()
					theirs = v.([]complex128)
				} else {
					_, v, next := ch.Recv()
					theirs = v.([]complex128)
					next.Send("col", cur)
				}
				out := make([]complex128, len(cur))
				fft.StageOutput(8, j, span, cur, theirs, out)
				cur = out
				// Global synchronisation between stages (the cost of the
				// binary decomposition).
				barriers[si].Done()
				barriers[si].Wait()
			}
		}(j)
	}
	wg.Wait()
	return len(cols[0]), nil
}
