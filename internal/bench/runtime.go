// Package bench implements the paper's evaluation harness: the runtime
// throughput experiments of Fig. 6 (streaming, double buffering, FFT across
// five runtime designs), the verification-scalability experiments of Fig. 7
// (our subtyping algorithm versus SoundBinary and k-MC on four protocol
// families), and the expressiveness classification of Table 1.
//
// Each experiment function performs one complete run at a given parameter and
// returns the work done, so that callers — the cmd/fig6 and cmd/fig7 binaries
// and the testing.B benchmarks in bench_test.go — can derive throughput or
// running time in the same shape as the paper's plots.
package bench

import (
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/channel"
	"repro/internal/fft"
	"repro/internal/types"
)

// Runtime identifies one of the five runtime designs compared in Fig. 6.
type Runtime int

const (
	// Sesh: binary, synchronous, per-interaction channel allocation.
	Sesh Runtime = iota
	// MultiCrusty: multiparty as a synchronous binary mesh.
	MultiCrusty
	// Ferrite: binary, asynchronous, per-interaction channel allocation.
	Ferrite
	// Rumpsteak: multiparty, asynchronous, persistent queues.
	Rumpsteak
	// RumpsteakOpt: Rumpsteak running the AMR-optimised protocol.
	RumpsteakOpt
)

// Runtimes lists the designs in the paper's legend order.
var Runtimes = []Runtime{Sesh, MultiCrusty, Ferrite, Rumpsteak, RumpsteakOpt}

func (r Runtime) String() string {
	switch r {
	case Sesh:
		return "sesh"
	case MultiCrusty:
		return "multicrusty"
	case Ferrite:
		return "ferrite"
	case Rumpsteak:
		return "rumpsteak"
	case RumpsteakOpt:
		return "rumpsteak-opt"
	default:
		return "unknown"
	}
}

// rsNetwork builds the persistent unbounded queues the Rumpsteak-analogue
// uses. The raw network (no monitor) is used for benchmarking: the protocols
// are verified once, not re-checked per message, matching the Rust framework
// where conformance costs nothing at run time.
type rsNetwork struct {
	queues map[[2]types.Role]*channel.Queue
}

func newRSNetwork(roles ...types.Role) *rsNetwork {
	n := &rsNetwork{queues: map[[2]types.Role]*channel.Queue{}}
	for _, a := range roles {
		for _, b := range roles {
			if a != b {
				n.queues[[2]types.Role{a, b}] = channel.NewQueue()
			}
		}
	}
	return n
}

func (n *rsNetwork) send(from, to types.Role, label types.Label, v any) {
	n.queues[[2]types.Role{from, to}].Send(channel.Message{Label: label, Value: v})
}

func (n *rsNetwork) recv(from, to types.Role) channel.Message {
	m, err := n.queues[[2]types.Role{from, to}].Recv()
	if err != nil {
		panic(fmt.Sprintf("bench: recv %s->%s: %v", from, to, err))
	}
	return m
}

// Streaming runs the streaming protocol once: the sink requests values until
// the source has delivered n, then the source stops. The optimised variant
// unrolls `unroll` value sends ahead of their readys (§4.1 uses 5).
// It returns the number of values transferred, the figure's throughput unit.
func Streaming(rt Runtime, n, unroll int) (int, error) {
	switch rt {
	case Sesh, Ferrite:
		return streamingBinary(rt == Ferrite, n)
	case MultiCrusty:
		return streamingMesh(n)
	case Rumpsteak:
		return streamingRumpsteak(n, 0)
	case RumpsteakOpt:
		return streamingRumpsteak(n, unroll)
	default:
		return 0, fmt.Errorf("bench: unknown runtime %v", rt)
	}
}

func streamingBinary(async bool, n int) (int, error) {
	// One fresh one-shot channel per interaction, continuation-passing.
	ch := baseline.NewPair(async)
	var wg sync.WaitGroup
	wg.Add(1)
	received := 0
	go func() { // sink
		defer wg.Done()
		c := ch
		for {
			c = c.Send("ready", nil)
			label, _, next := c.Recv()
			if label == "stop" {
				return
			}
			received++
			c = next
		}
	}()
	// source
	c := ch
	for i := 0; ; i++ {
		label, _, next := c.Recv()
		if label != "ready" {
			return 0, fmt.Errorf("bench: source expected ready, got %s", label)
		}
		c = next
		if i == n {
			c.Send("stop", nil)
			break
		}
		c = c.Send("value", i)
	}
	wg.Wait()
	return received, nil
}

func streamingMesh(n int) (int, error) {
	m := baseline.NewMesh(false, "s", "t")
	var wg sync.WaitGroup
	wg.Add(1)
	received := 0
	go func() { // sink
		defer wg.Done()
		e := m.Endpoint("t")
		for {
			e.Send("s", "ready", nil)
			label, _, _ := mustRecv(e, "s")
			if label == "stop" {
				return
			}
			received++
		}
	}()
	e := m.Endpoint("s")
	for i := 0; ; i++ {
		if _, err := e.RecvLabel("t", "ready"); err != nil {
			return 0, err
		}
		if i == n {
			e.Send("t", "stop", nil)
			break
		}
		e.Send("t", "value", i)
	}
	wg.Wait()
	return received, nil
}

func mustRecv(e *baseline.MeshEndpoint, from types.Role) (types.Label, any, error) {
	label, v, err := e.Recv(from)
	if err != nil {
		panic(err)
	}
	return label, v, err
}

// streamingRumpsteak runs the protocol over persistent unbounded queues.
// With unroll = u > 0, the source sends its first u values before waiting for
// readys, consuming the outstanding readys before stopping — the verified
// AMR of protocols.OptimisedStreaming generalised to u unrolls.
func streamingRumpsteak(n, unroll int) (int, error) {
	if unroll > n {
		unroll = n
	}
	net := newRSNetwork("s", "t")
	var wg sync.WaitGroup
	wg.Add(1)
	received := 0
	go func() { // sink: unchanged by the source's AMR
		defer wg.Done()
		for {
			net.send("t", "s", "ready", nil)
			m := net.recv("s", "t")
			if m.Label == "stop" {
				return
			}
			received++
		}
	}()
	// source
	for i := 0; i < unroll; i++ {
		net.send("s", "t", "value", i)
	}
	for i := unroll; i < n; i++ {
		net.recv("t", "s") // ready
		net.send("s", "t", "value", i)
	}
	// Drain the readys matching the unrolled sends, then the final ready.
	for i := 0; i < unroll; i++ {
		net.recv("t", "s")
	}
	net.recv("t", "s")
	net.send("s", "t", "stop", nil)
	wg.Wait()
	if received != n {
		return received, fmt.Errorf("bench: sink received %d of %d", received, n)
	}
	return received, nil
}

// DoubleBuffering runs the double-buffering protocol for two iterations of
// buffers of n values each (as in §4.1: "two iterations allows both of the
// kernel's buffers to be filled"), returning total values moved end to end.
// Buffers are modelled as n individual value messages per iteration, so the
// message count scales with n exactly as the figure's x-axis does.
func DoubleBuffering(rt Runtime, n int) (int, error) {
	const iters = 2
	switch rt {
	case Sesh, Ferrite:
		return doubleBufferingBinary(rt == Ferrite, n, iters)
	case MultiCrusty:
		return doubleBufferingMesh(n, iters)
	case Rumpsteak:
		return doubleBufferingRumpsteak(n, iters, false)
	case RumpsteakOpt:
		return doubleBufferingRumpsteak(n, iters, true)
	default:
		return 0, fmt.Errorf("bench: unknown runtime %v", rt)
	}
}

// doubleBufferingBinary decomposes the three-party protocol into two binary
// sessions (s↔k, k↔t), as §4.1 does for Sesh and Ferrite — without
// multiparty safety, and with per-interaction allocation.
func doubleBufferingBinary(async bool, n, iters int) (int, error) {
	sk := baseline.NewPair(async)
	kt := baseline.NewPair(async)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // source
		defer wg.Done()
		c := sk
		for it := 0; it < iters; it++ {
			_, _, next := c.Recv() // ready
			c = next
			for v := 0; v < n; v++ {
				c = c.Send("value", v)
			}
		}
	}()
	moved := 0
	go func() { // sink
		defer wg.Done()
		c := kt
		for it := 0; it < iters; it++ {
			c = c.Send("ready", nil)
			for v := 0; v < n; v++ {
				_, _, next := c.Recv()
				moved++
				c = next
			}
		}
	}()
	// kernel
	cs, ct := sk, kt
	for it := 0; it < iters; it++ {
		cs = cs.Send("ready", nil)
		buf := make([]any, 0, n)
		for v := 0; v < n; v++ {
			_, value, next := cs.Recv()
			buf = append(buf, value)
			cs = next
		}
		_, _, next := ct.Recv() // sink ready
		ct = next
		for _, value := range buf {
			ct = ct.Send("value", value)
		}
	}
	wg.Wait()
	return moved, nil
}

func doubleBufferingMesh(n, iters int) (int, error) {
	m := baseline.NewMesh(false, "k", "s", "t")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // source
		defer wg.Done()
		e := m.Endpoint("s")
		for it := 0; it < iters; it++ {
			e.RecvLabel("k", "ready")
			for v := 0; v < n; v++ {
				e.Send("k", "value", v)
			}
		}
	}()
	moved := 0
	go func() { // sink
		defer wg.Done()
		e := m.Endpoint("t")
		for it := 0; it < iters; it++ {
			e.Send("k", "ready", nil)
			for v := 0; v < n; v++ {
				e.RecvLabel("k", "value")
				moved++
			}
		}
	}()
	e := m.Endpoint("k")
	for it := 0; it < iters; it++ {
		e.Send("s", "ready", nil)
		buf := make([]any, 0, n)
		for v := 0; v < n; v++ {
			value, err := e.RecvLabel("s", "value")
			if err != nil {
				return 0, err
			}
			buf = append(buf, value)
		}
		if _, err := e.RecvLabel("t", "ready"); err != nil {
			return 0, err
		}
		for _, value := range buf {
			e.Send("t", "value", value)
		}
	}
	wg.Wait()
	return moved, nil
}

// doubleBufferingRumpsteak runs the kernel over persistent queues; when
// optimised it issues the second ready immediately (Fig. 4b), letting the
// source fill the second buffer while the sink drains the first.
func doubleBufferingRumpsteak(n, iters int, optimised bool) (int, error) {
	net := newRSNetwork("k", "s", "t")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // source
		defer wg.Done()
		for it := 0; it < iters; it++ {
			net.recv("k", "s") // ready
			for v := 0; v < n; v++ {
				net.send("s", "k", "value", v)
			}
		}
	}()
	moved := 0
	go func() { // sink
		defer wg.Done()
		for it := 0; it < iters; it++ {
			net.send("t", "k", "ready", nil)
			for v := 0; v < n; v++ {
				net.recv("k", "t")
				moved++
			}
		}
	}()
	// kernel
	if optimised {
		net.send("k", "s", "ready", nil) // anticipate the second buffer
	}
	for it := 0; it < iters; it++ {
		if optimised {
			if it+1 < iters {
				net.send("k", "s", "ready", nil)
			}
		} else {
			net.send("k", "s", "ready", nil)
		}
		buf := make([]any, 0, n)
		for v := 0; v < n; v++ {
			buf = append(buf, net.recv("s", "k").Value)
		}
		net.recv("t", "k") // sink ready
		for _, value := range buf {
			net.send("k", "t", "value", value)
		}
	}
	wg.Wait()
	return moved, nil
}

// FFTSequential runs the RustFFT-analogue: the row-wise 8-point transform of
// an n×8 matrix with no message passing. Returns rows processed.
func FFTSequential(n int) (int, error) {
	cols := randomMatrix(n)
	if err := fft.SequentialColumns(cols); err != nil {
		return 0, err
	}
	return n, nil
}

// FFTParallel runs the eight-process butterfly over the chosen runtime.
// Whole columns travel as single messages, as in the paper's implementation.
// The plain schedule has the lower partner of each exchange send first; the
// optimised (AMR) schedule has everyone send before receiving.
func FFTParallel(rt Runtime, n int) (int, error) {
	cols := randomMatrix(n)
	switch rt {
	case Sesh, Ferrite:
		return fftBinary(rt == Ferrite, cols)
	case MultiCrusty:
		return fftMesh(cols)
	case Rumpsteak:
		return fftRumpsteak(cols, false)
	case RumpsteakOpt:
		return fftRumpsteak(cols, true)
	default:
		return 0, fmt.Errorf("bench: unknown runtime %v", rt)
	}
}

func randomMatrix(n int) [][]complex128 {
	cols := make([][]complex128, 8)
	seed := uint64(1)
	for j := range cols {
		cols[j] = make([]complex128, n)
		for r := range cols[j] {
			// Cheap deterministic pseudo-random values; the arithmetic cost
			// is what matters, not the distribution.
			seed = seed*6364136223846793005 + 1442695040888963407
			cols[j][r] = complex(float64(int32(seed>>33))/1e9, float64(int32(seed>>13))/1e9)
		}
	}
	return cols
}

// fftWorker runs process j's three butterfly stages, exchanging columns via
// the provided send/recv functions.
func fftWorker(j int, col []complex128, send func(stage, to int, col []complex128), recv func(stage, from int) []complex128, amr bool) []complex128 {
	cur := col
	for si, span := range fft.Stages(8) {
		p := fft.Partner(j, span)
		var theirs []complex128
		if amr || j < p {
			// Optimised: everyone sends first. Plain: lower index sends
			// first (the global-type order), upper receives then replies.
			send(si, p, cur)
			theirs = recv(si, p)
		} else {
			theirs = recv(si, p)
			send(si, p, cur)
		}
		next := make([]complex128, len(cur))
		fft.StageOutput(8, j, span, cur, theirs, next)
		cur = next
	}
	return cur
}

func fftRumpsteak(cols [][]complex128, amr bool) (int, error) {
	roles := make([]types.Role, 8)
	for j := range roles {
		roles[j] = types.Role(fmt.Sprintf("w%d", j))
	}
	net := newRSNetwork(roles...)
	var wg sync.WaitGroup
	out := make([][]complex128, 8)
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			send := func(stage, to int, col []complex128) {
				net.send(roles[j], roles[to], "col", col)
			}
			recv := func(stage, from int) []complex128 {
				return net.recv(roles[from], roles[j]).Value.([]complex128)
			}
			out[j] = fftWorker(j, cols[j], send, recv, amr)
		}(j)
	}
	wg.Wait()
	return len(cols[0]), nil
}

func fftMesh(cols [][]complex128) (int, error) {
	roles := make([]types.Role, 8)
	for j := range roles {
		roles[j] = types.Role(fmt.Sprintf("w%d", j))
	}
	m := baseline.NewMesh(false, roles...)
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			e := m.Endpoint(roles[j])
			send := func(stage, to int, col []complex128) {
				e.Send(roles[to], "col", col)
			}
			recv := func(stage, from int) []complex128 {
				v, err := e.RecvLabel(roles[from], "col")
				if err != nil {
					panic(err)
				}
				return v.([]complex128)
			}
			// Synchronous mesh cannot have both partners send first (both
			// would block); keep the ordered schedule.
			fftWorker(j, cols[j], send, recv, false)
		}(j)
	}
	wg.Wait()
	return len(cols[0]), nil
}

// fftBinary represents the protocol as one binary session per butterfly pair
// per stage, with the extra all-pairs synchronisation §4.1 describes for the
// binary decompositions: every stage waits for all pairs of the previous
// stage to finish.
func fftBinary(async bool, cols [][]complex128) (int, error) {
	// One fresh channel per (stage, pair); plus a barrier between stages.
	chans := make([]map[[2]int]*baseline.Chan, 3)
	for si := range chans {
		chans[si] = map[[2]int]*baseline.Chan{}
	}
	for si, span := range fft.Stages(8) {
		for j := 0; j < 8; j++ {
			if p := fft.Partner(j, span); j < p {
				chans[si][[2]int{j, p}] = baseline.NewPair(async)
			}
		}
	}
	barriers := make([]*sync.WaitGroup, 3)
	for i := range barriers {
		var wg sync.WaitGroup
		wg.Add(8)
		barriers[i] = &wg
	}
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			cur := cols[j]
			for si, span := range fft.Stages(8) {
				p := fft.Partner(j, span)
				lo, hi := j, p
				if lo > hi {
					lo, hi = hi, lo
				}
				ch := chans[si][[2]int{lo, hi}]
				var theirs []complex128
				if j == lo {
					next := ch.Send("col", cur)
					_, v, _ := next.Recv()
					theirs = v.([]complex128)
				} else {
					_, v, next := ch.Recv()
					theirs = v.([]complex128)
					next.Send("col", cur)
				}
				out := make([]complex128, len(cur))
				fft.StageOutput(8, j, span, cur, theirs, out)
				cur = out
				// Global synchronisation between stages (the cost of the
				// binary decomposition).
				barriers[si].Done()
				barriers[si].Wait()
			}
		}(j)
	}
	wg.Wait()
	return len(cols[0]), nil
}
