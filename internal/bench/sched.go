package bench

// This file is the multi-session throughput experiment behind
// BENCH_sched.json (`make bench-sched`): sessions/sec as a function of the
// number of concurrent sessions (1 → 100k) and the worker-pool width
// (GOMAXPROCS 1/2/4). Where Fig. 6 measures one session at a time on
// dedicated goroutines, this axis measures the production shape the ROADMAP
// asks for — thousands of verified sessions multiplexed over a fixed pool
// via non-blocking stepping (internal/sched). See EXPERIMENTS.md,
// "Multi-session scheduling throughput".

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/sched"
	"repro/internal/session"
	"repro/internal/types"
)

// schedBase memoises the verified streaming session the throughput runs
// fork: verification happens once per process, instances are cheap forks.
var schedBase struct {
	once sync.Once
	sess *session.Session
	err  error
}

func schedBaseSession() (*session.Session, error) {
	schedBase.once.Do(func() {
		g := types.MustParseGlobal("mu x.t->s:ready.s->t:{value(i32).x, stop.end}")
		schedBase.sess, schedBase.err = session.TopDown(g, nil, core.Options{})
	})
	return schedBase.sess, schedBase.err
}

// schedStreamValues is how many values each benchmark session streams
// before its sink-side stop: enough loop turns that per-session setup does
// not dominate, small enough that 100k sessions stay cheap.
const schedStreamValues = 8

// valuesThenStop drives the streaming source: it answers the sink's readys
// with schedStreamValues values, then stop.
type valuesThenStop struct{ sent int }

func (v *valuesThenStop) Choose(_ fsm.State, options []fsm.Transition) int {
	want := types.Label("stop")
	if v.sent < schedStreamValues {
		want = "value"
	}
	for i, t := range options {
		if t.Act.Label == want {
			if want == "value" {
				v.sent++
			}
			return i
		}
	}
	return 0
}
func (v *valuesThenStop) Payload(act fsm.Action) any {
	if act.Label == "value" {
		return int32(v.sent)
	}
	return nil
}
func (v *valuesThenStop) Received(fsm.Action, any) {}

// ResetStrategy implements session.StrategyResetter so the pooled
// throughput runs rewind the source's send counter in place instead of
// allocating a fresh strategy per recycled instance — a requirement for the
// zero-alloc steady state.
func (v *valuesThenStop) ResetStrategy() { v.sent = 0 }

// schedStrategy returns the per-role strategy of one benchmark session.
func schedStrategy(r types.Role) session.Strategy {
	if r == "s" {
		return &valuesThenStop{}
	}
	return session.FirstBranch{}
}

// schedSessionBudget bounds each role generously above the actions a full
// run needs (per loop turn the source and sink each perform 2 actions, plus
// the stop exchange), so completion always comes from the protocol's own
// end, never the budget.
const schedSessionBudget = 4*schedStreamValues + 8

// SchedThroughput runs n complete streaming sessions — verified once,
// forked per instance — over a sched.Scheduler with the given number of
// workers, and returns n. Each session runs to protocol completion
// (schedStreamValues values then stop), so sessions/sec follows directly
// from timing this call.
func SchedThroughput(workers, n int) (int, error) {
	base, err := schedBaseSession()
	if err != nil {
		return 0, err
	}
	s := sched.New(sched.Options{Workers: workers})
	for i := 0; i < n; i++ {
		if err := s.GoSession(base.Fork(), schedSessionBudget, schedStrategy); err != nil {
			s.Close()
			return 0, fmt.Errorf("bench: sched session %d: %w", i, err)
		}
	}
	if err := s.Close(); err != nil {
		return 0, fmt.Errorf("bench: sched run (%d sessions, %d workers): %w", n, workers, err)
	}
	return n, nil
}

// SchedThroughputPooled is SchedThroughput over the scheduler's pooled
// enqueue path (sched.GoSessionPooled): instead of forking a fresh instance
// per session, finished instances are recycled from per-worker free lists,
// and the bounded Backlog admission keeps resident memory flat — this is
// the path that holds sessions/sec level from 10k to 1M concurrent
// sessions. noSteal disables work stealing for the ablation column; the
// payload protocol, strategies and budgets are identical to
// SchedThroughput, so the two columns are directly comparable.
func SchedThroughputPooled(workers, n int, noSteal bool) (int, error) {
	base, err := schedBaseSession()
	if err != nil {
		return 0, err
	}
	s := sched.New(sched.Options{Workers: workers, NoSteal: noSteal})
	// First-failure capture without taking the error's address: &err in the
	// callback would heap-allocate the parameter on every invocation and
	// poison the zero-alloc steady state this function demonstrates.
	var mu sync.Mutex
	var failed error
	onDone := func(err error) {
		if err != nil {
			mu.Lock()
			if failed == nil {
				failed = err
			}
			mu.Unlock()
		}
	}
	for i := 0; i < n; i++ {
		if err := s.GoSessionPooled(base, schedSessionBudget, schedStrategy, time.Time{}, onDone); err != nil {
			s.Close()
			return 0, fmt.Errorf("bench: pooled sched session %d: %w", i, err)
		}
	}
	if err := s.Close(); err != nil {
		return 0, fmt.Errorf("bench: pooled sched run (%d sessions, %d workers, noSteal=%v): %w", n, workers, noSteal, err)
	}
	if failed != nil {
		return 0, fmt.Errorf("bench: pooled sched run: session failed: %w", failed)
	}
	return n, nil
}

// SchedGoroutineBaseline is the classic shape SchedThroughput is compared
// against: the same n streaming sessions, each on its own pair of blocking
// goroutines (2n goroutines in flight), bounded by the same budgets. The
// gap between the two columns is the scheduling axis of BENCH_sched.json.
func SchedGoroutineBaseline(n int) (int, error) {
	base, err := schedBaseSession()
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		inst := base.Fork()
		wg.Add(1)
		go func() {
			defer wg.Done()
			procs := map[types.Role]func(*session.Endpoint) error{}
			for _, r := range inst.Roles() {
				r := r
				procs[r] = func(ep *session.Endpoint) error {
					return session.Drive(ep, inst.FSM(r), schedStrategy(r), schedSessionBudget)
				}
			}
			if err := inst.Run(procs); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return 0, fmt.Errorf("bench: goroutine baseline: %w", err)
	}
	return n, nil
}
