package bench

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/session"
	"repro/internal/types"
)

func TestStreamingAllRuntimes(t *testing.T) {
	for _, rt := range Runtimes {
		rt := rt
		t.Run(rt.String(), func(t *testing.T) {
			t.Parallel()
			got, err := Streaming(rt, 50, 5)
			if err != nil {
				t.Fatal(err)
			}
			if got != 50 {
				t.Errorf("transferred %d values, want 50", got)
			}
		})
	}
}

func TestStreamingUnrollClamped(t *testing.T) {
	// unroll > n must not deadlock or overshoot.
	got, err := Streaming(RumpsteakOpt, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("transferred %d, want 3", got)
	}
}

func TestDoubleBufferingAllRuntimes(t *testing.T) {
	for _, rt := range Runtimes {
		rt := rt
		t.Run(rt.String(), func(t *testing.T) {
			t.Parallel()
			got, err := DoubleBuffering(rt, 100)
			if err != nil {
				t.Fatal(err)
			}
			if got != 200 { // two iterations of n values
				t.Errorf("moved %d values, want 200", got)
			}
		})
	}
}

func TestFFTAllRuntimes(t *testing.T) {
	for _, rt := range Runtimes {
		rt := rt
		t.Run(rt.String(), func(t *testing.T) {
			t.Parallel()
			got, err := FFTParallel(rt, 64)
			if err != nil {
				t.Fatal(err)
			}
			if got != 64 {
				t.Errorf("processed %d rows, want 64", got)
			}
		})
	}
	if got, err := FFTSequential(64); err != nil || got != 64 {
		t.Errorf("sequential: %d %v", got, err)
	}
}

// TestMisWiredRunReturnsError pins the errgroup contract of the benchmark
// harness: a failed operation inside a worker goroutine must fail the single
// experiment with context — not panic and tear down the whole `go test
// -bench` or cmd/fig6 process — and must release sibling processes blocked
// on routes that will never deliver.
func TestMisWiredRunReturnsError(t *testing.T) {
	net := newRSNetwork("a", "b")
	done := make(chan error, 1)
	go func() {
		done <- net.run(map[types.Role]func(*session.Endpoint) error{
			// Mis-wired: sends to a role outside the network.
			"a": func(e *session.Endpoint) error {
				return e.Send("z", "ping", nil)
			},
			// Blocks on a message that will never arrive; the teardown must
			// release it with ErrClosed rather than leaking the goroutine.
			"b": func(e *session.Endpoint) error {
				_, _, err := e.Receive("a")
				return err
			},
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("mis-wired run reported success")
		}
		if !strings.Contains(err.Error(), "role a") || !strings.Contains(err.Error(), "no route") {
			t.Errorf("error lacks context: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mis-wired run deadlocked instead of returning an error")
	}
}

// TestRunFirstErrorWins pins which error surfaces: the faulting process's
// own error, not the ErrClosed its siblings observe during teardown.
func TestRunFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	net := newRSNetwork("a", "b")
	err := net.run(map[types.Role]func(*session.Endpoint) error{
		"a": func(e *session.Endpoint) error { return boom },
		"b": func(e *session.Endpoint) error {
			_, _, err := e.Receive("a")
			return err
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("first error = %v, want %v", err, boom)
	}
	if errors.Is(err, channel.ErrClosed) {
		t.Fatalf("teardown error shadowed the faulting process: %v", err)
	}
}

// TestAutoSchedulesDerived confirms the RumpsteakAuto column actually
// consults the optimiser: the streaming unroll is read off the derived type,
// and the double-buffering and FFT schedules certify.
func TestAutoSchedulesDerived(t *testing.T) {
	u, err := autoStreamingUnroll(5)
	if err != nil {
		t.Fatal(err)
	}
	if u < 1 || u > 5 {
		t.Errorf("derived streaming unroll %d outside (0, 5]", u)
	}
	opt, err := autoDoubleBufferingOptimised()
	if err != nil || !opt {
		t.Errorf("double-buffering anticipation not derived: %v", err)
	}
	amr, err := autoFFTAllSendFirst()
	if err != nil || !amr {
		t.Errorf("FFT all-send-first schedule not certified: %v", err)
	}
}

func TestSessionStreamingBothSubstrates(t *testing.T) {
	for _, sub := range []NetworkSubstrate{RingSubstrate, QueueSubstrate} {
		got, err := SessionStreaming(sub, 40)
		if err != nil {
			t.Errorf("%s: %v", sub, err)
		}
		if got != 40 {
			t.Errorf("%s: received %d values, want 40", sub, got)
		}
	}
}

// BenchmarkSessionRunStreaming is the Session.Run end-to-end head-to-head:
// the full monitored runtime (verification cached, one FSM step per action)
// moving 100 values through the streaming protocol, per substrate.
func BenchmarkSessionRunStreaming(b *testing.B) {
	for _, sub := range []NetworkSubstrate{RingSubstrate, QueueSubstrate} {
		b.Run(sub.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SessionStreaming(sub, 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenRunFFT is the generated-API FFT end to end: the eight-worker
// butterfly exchanging whole vec<complex128> columns through the typed
// state-pattern API — the FFT×rumpsteak-gen row of BENCH_codegen.json that
// closes the Fig. 6 coverage gap (no workload is excluded from the
// generated column any more).
func BenchmarkGenRunFFT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FFTParallel(RumpsteakGen, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenRunStreaming is the generated-API counterpart of
// BenchmarkSessionRunStreaming: the same streaming protocol moving 100
// values end to end, but with conformance enforced by the sessgen-generated
// state types instead of the runtime monitor — no FSM step, no sort check,
// route-bound sends. The pair is the headline number of BENCH_codegen.json.
func BenchmarkGenRunStreaming(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenStreaming(100); err != nil {
			b.Fatal(err)
		}
	}
}

func TestVerifyStreamingAllVerifiers(t *testing.T) {
	for _, v := range []Verifier{RumpsteakSubtyping, SoundBinary, KMC} {
		for _, n := range []int{0, 3, 10} {
			if err := VerifyStreaming(v, n); err != nil {
				t.Errorf("%s n=%d: %v", v, n, err)
			}
		}
	}
}

func TestVerifyNestedChoiceAllVerifiers(t *testing.T) {
	for _, v := range []Verifier{RumpsteakSubtyping, SoundBinary, KMC} {
		for n := 1; n <= 2; n++ {
			if err := VerifyNestedChoice(v, n); err != nil {
				t.Errorf("%s n=%d: %v", v, n, err)
			}
		}
	}
}

func TestVerifyRing(t *testing.T) {
	for _, v := range []Verifier{RumpsteakSubtyping, KMC} {
		for _, n := range []int{2, 4, 6} {
			if err := VerifyRing(v, n); err != nil {
				t.Errorf("%s n=%d: %v", v, n, err)
			}
		}
	}
	if err := VerifyRing(SoundBinary, 3); err == nil {
		t.Error("SoundBinary should not support the multiparty ring")
	}
}

func TestVerifyKBuffering(t *testing.T) {
	for _, v := range []Verifier{RumpsteakSubtyping, KMC} {
		for _, n := range []int{1, 4, 8} {
			if err := VerifyKBuffering(v, n); err != nil {
				t.Errorf("%s n=%d: %v", v, n, err)
			}
		}
	}
	if err := VerifyKBuffering(SoundBinary, 2); err == nil {
		t.Error("SoundBinary should not support multiparty k-buffering")
	}
}

func TestTable1Verdicts(t *testing.T) {
	rows := Table1()
	if len(rows) != 17 {
		t.Fatalf("Table1 has %d rows", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Entry.Name] = r
	}

	// Spot-check the paper's classifications.
	checks := []struct {
		name   string
		column string
		want   Cell
	}{
		{"Two Adder", "sesh", Yes},
		{"Two Adder", "rumpsteak", Yes},
		{"Three Adder", "sesh", Endpoint},
		{"Three Adder", "multicrusty", Yes},
		{"Optimised Streaming", "sesh", Endpoint},
		{"Optimised Streaming", "multicrusty", Endpoint},
		{"Optimised Streaming", "rumpsteak", Yes},
		{"Optimised Streaming", "kmc", Yes},
		{"Optimised Double Buffering", "rumpsteak", Yes},
		{"Optimised Double Buffering", "soundbinary", No},
		{"Hospital", "rumpsteak", Endpoint},
		{"Hospital", "kmc", Endpoint},
		{"Hospital", "soundbinary", Yes},
		{"FFT", "multicrusty", Yes},
		{"Optimised FFT", "multicrusty", Endpoint},
		{"Optimised FFT", "rumpsteak", Yes},
	}
	for _, c := range checks {
		row, ok := byName[c.name]
		if !ok {
			t.Errorf("row %q missing", c.name)
			continue
		}
		var got Cell
		switch c.column {
		case "sesh":
			got = row.Sesh
		case "ferrite":
			got = row.Ferrite
		case "multicrusty":
			got = row.MultiCrusty
		case "rumpsteak":
			got = row.Rumpsteak
		case "kmc":
			got = row.KMCCell
		case "soundbinary":
			got = row.SoundBin
		}
		if got != c.want {
			t.Errorf("%s/%s = %s, want %s", c.name, c.column, got, c.want)
		}
	}
}

func TestWriteCSVAndTable(t *testing.T) {
	series := []Series{
		{Name: "a", Points: []Point{{X: 1, Y: 0.5}, {X: 2, Y: 1.5}}},
		{Name: "b", Points: []Point{{X: 2, Y: 2.5}}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, "n", series); err != nil {
		t.Fatal(err)
	}
	want := "n,a,b\n1,0.5,\n2,1.5,2.5\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
	buf.Reset()
	if err := WriteTable(&buf, "n", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"n", "a", "b", "0.5", "2.5", "-"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	d, err := Time(func() error { time.Sleep(time.Millisecond); return nil })
	if err != nil || d < time.Millisecond {
		t.Errorf("Time = %v %v", d, err)
	}
	if _, err := TimeBest(0, func() error { return nil }); err != nil {
		t.Error(err)
	}
	wantErr := func() error { return errTest }
	if _, err := TimeBest(3, wantErr); err != errTest {
		t.Errorf("TimeBest error = %v", err)
	}
}

var errTest = errSentinel("test")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
