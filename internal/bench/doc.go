// Package bench implements the paper's evaluation harness: the runtime
// throughput experiments of Fig. 6 (streaming, double buffering, FFT across
// five runtime designs), the verification-scalability experiments of Fig. 7
// (our subtyping algorithm versus SoundBinary and k-MC on four protocol
// families), and the expressiveness classification of Table 1.
//
// Each experiment function performs one complete run at a given parameter and
// returns the work done, so that callers — the cmd/fig6 and cmd/fig7 binaries
// and the testing.B benchmarks in bench_test.go — can derive throughput or
// running time in the same shape as the paper's plots.
//
// EXPERIMENTS.md is the methodology companion (per-figure recipes, the
// k-MC truncation rationale, the scheduling-throughput axis of
// BENCH_sched.json); DESIGN.md prices the API tiers these experiments
// compare head to head.
package bench
