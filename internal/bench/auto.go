package bench

import (
	"fmt"
	"sync"

	"repro/internal/optimise"
	"repro/internal/protocols"
	"repro/internal/types"
)

// This file reads the RumpsteakAuto schedules off the automatically derived
// endpoint types: instead of hardcoding "the optimiser would unroll u
// values", each experiment consults internal/optimise on the registry
// protocol it reproduces and extracts the executable parameter (unroll
// depth, ready anticipation, send-first schedule) from the certified type.
// Derivations are memoised: they run once per process, not once per
// measured iteration.

// autoStreaming caches the derived streaming unroll per requested budget.
var autoStreaming struct {
	sync.Mutex
	unrolls map[int]int
	errs    map[int]error
}

// autoStreamingUnroll derives the streaming source with a pipelining budget
// of maxUnroll (Fig. 6 passes 5, as §4.1 does) and returns the unroll depth
// the certified type actually achieves: the number of hoisted value sends in
// front of its loop.
func autoStreamingUnroll(maxUnroll int) (int, error) {
	if maxUnroll < 1 {
		maxUnroll = 1
	}
	autoStreaming.Lock()
	defer autoStreaming.Unlock()
	if u, ok := autoStreaming.unrolls[maxUnroll]; ok {
		return u, autoStreaming.errs[maxUnroll]
	}
	e := protocols.Streaming()
	res, err := optimise.Optimise("s", e.Locals["s"], optimise.Options{MaxUnroll: maxUnroll})
	u := 0
	switch {
	case err != nil:
		err = fmt.Errorf("bench: deriving streaming source: %w", err)
	case !res.Improved:
		err = fmt.Errorf("bench: optimiser derived no streaming improvement")
	default:
		u = countLeadingSends(res.Best.Type, "t", "value")
		if u == 0 {
			err = fmt.Errorf("bench: derived streaming source %s hoists no value sends", res.Best.Type)
		}
	}
	if autoStreaming.unrolls == nil {
		autoStreaming.unrolls = map[int]int{}
		autoStreaming.errs = map[int]error{}
	}
	autoStreaming.unrolls[maxUnroll] = u
	autoStreaming.errs[maxUnroll] = err
	return u, err
}

var autoDoubleBuffer struct {
	once sync.Once
	opt  bool
	err  error
}

// autoDoubleBufferingOptimised derives the double-buffering kernel and
// reports whether the certified type anticipates the source ready (Fig. 4b)
// — the schedule doubleBufferingRumpsteak's optimised path drives.
func autoDoubleBufferingOptimised() (bool, error) {
	autoDoubleBuffer.once.Do(func() {
		e := protocols.DoubleBuffering()
		res, err := optimise.Optimise("k", e.Locals["k"], optimise.Options{MaxUnroll: 1})
		if err != nil {
			autoDoubleBuffer.err = fmt.Errorf("bench: deriving double-buffering kernel: %w", err)
			return
		}
		autoDoubleBuffer.opt = res.Improved && countLeadingSends(res.Best.Type, "s", "ready") > 0
		if !autoDoubleBuffer.opt {
			autoDoubleBuffer.err = fmt.Errorf("bench: optimiser derived no ready anticipation for the kernel (got %s)", res.Best.Type)
		}
	})
	return autoDoubleBuffer.opt, autoDoubleBuffer.err
}

var autoFFT struct {
	once sync.Once
	amr  bool
	err  error
}

// autoFFTAllSendFirst reports whether the optimiser's certified candidate
// set for every FFT worker contains the all-send-first endpoint — the
// schedule fftRumpsteak's amr path can actually drive. The optimiser's *best*
// candidate may anticipate even deeper (it maximises lookahead, not
// drivability), so the check scans the whole certified set for the
// executable schedule; one worker failing to derive it fails the whole
// column with an error (no silent downgrade to the plain schedule).
func autoFFTAllSendFirst() (bool, error) {
	autoFFT.once.Do(func() {
		e := protocols.FFT()
		want := protocols.OptimisedFFT().Optimised
		for _, r := range protocols.FFTRoles() {
			res, err := optimise.Optimise(r, e.Locals[r], optimise.Options{})
			if err != nil {
				autoFFT.err = fmt.Errorf("bench: deriving FFT worker %s: %w", r, err)
				return
			}
			found := false
			for _, c := range res.Certified {
				if types.AlphaEqualLocal(types.NormalizeLocal(c.Type), types.NormalizeLocal(want[r])) {
					found = true
					break
				}
			}
			if !found {
				autoFFT.err = fmt.Errorf("bench: optimiser did not certify the all-send-first schedule for FFT worker %s", r)
				return
			}
		}
		autoFFT.amr = true
	})
	return autoFFT.amr, autoFFT.err
}

// countLeadingSends counts the single-branch sends of the given peer and
// label prefixing t — the executable unroll depth of a pipelined type.
func countLeadingSends(t types.Local, peer types.Role, label types.Label) int {
	n := 0
	for {
		s, ok := t.(types.Send)
		if !ok || s.Peer != peer || len(s.Branches) != 1 || s.Branches[0].Label != label {
			return n
		}
		n++
		t = s.Branches[0].Cont
	}
}
