package bench

import (
	"errors"
	"runtime"
	"testing"

	genstreaming "repro/examples/gen/streaming"
	"repro/internal/codegen/genrt"
	"repro/internal/session"
)

// These tests pin the generated stepping face (the Try* methods sessgen now
// emits): would-block leaves the state value live and has no observable
// effect, success consumes it exactly like the blocking method, and a run
// driven entirely through Try* with retries observes the same values as the
// blocking generated run (GenStreaming, the rumpsteak-gen Fig. 6 column).

// trySpin retries op until it stops reporting session.ErrWouldBlock,
// yielding between probes (single-P runtimes starve the peer otherwise).
func trySpin(op func() error) error {
	for {
		err := op()
		if !errors.Is(err, session.ErrWouldBlock) {
			return err
		}
		runtime.Gosched()
	}
}

// TestGenTryStreamingMatchesBlocking drives the generated streaming protocol
// once through the blocking API and once entirely through the Try* face
// (retry loops standing in for a scheduler) and requires identical sink
// observations.
func TestGenTryStreamingMatchesBlocking(t *testing.T) {
	const n = 20
	want, err := GenStreaming(n)
	if err != nil {
		t.Fatalf("blocking generated run: %v", err)
	}

	var got []int32
	net := genstreaming.NewNetwork()
	err = genstreaming.Run(net, genstreaming.Procs{
		S: func(s genstreaming.S0) (genstreaming.SEnd, error) {
			var s1 genstreaming.S1
			if err := trySpin(func() (e error) { s1, e = s.TrySendValue(0); return }); err != nil {
				return genstreaming.SEnd{}, err
			}
			var loop genstreaming.S2
			if err := trySpin(func() (e error) { loop, e = s1.TrySendValue(1); return }); err != nil {
				return genstreaming.SEnd{}, err
			}
			for i := 2; i < n; i++ {
				var s4 genstreaming.S4
				if err := trySpin(func() (e error) { s4, e = loop.TrySendValue(int32(i)); return }); err != nil {
					return genstreaming.SEnd{}, err
				}
				if err := trySpin(func() (e error) { loop, e = s4.TryRecvReady(); return }); err != nil {
					return genstreaming.SEnd{}, err
				}
			}
			var s5 genstreaming.S5
			if err := trySpin(func() (e error) { s5, e = loop.TrySendStop(); return }); err != nil {
				return genstreaming.SEnd{}, err
			}
			var s6 genstreaming.S6
			if err := trySpin(func() (e error) { s6, e = s5.TryRecvReady(); return }); err != nil {
				return genstreaming.SEnd{}, err
			}
			var s7 genstreaming.S7
			if err := trySpin(func() (e error) { s7, e = s6.TryRecvReady(); return }); err != nil {
				return genstreaming.SEnd{}, err
			}
			var end genstreaming.SEnd
			if err := trySpin(func() (e error) { end, e = s7.TryRecvReady(); return }); err != nil {
				return genstreaming.SEnd{}, err
			}
			return end, nil
		},
		T: func(t0 genstreaming.T0) (genstreaming.TEnd, error) {
			cur := t0
			for {
				var t2 genstreaming.T2
				if err := trySpin(func() (e error) { t2, e = cur.TrySendReady(); return }); err != nil {
					return genstreaming.TEnd{}, err
				}
				var b genstreaming.T2Branch
				if err := trySpin(func() (e error) { b, e = t2.TryBranch(); return }); err != nil {
					return genstreaming.TEnd{}, err
				}
				if b.Label == genstreaming.LabelStop {
					return b.StopNext, nil
				}
				got = append(got, b.ValuePayload)
				cur = b.ValueNext
			}
		},
	})
	if err != nil {
		t.Fatalf("try-face generated run: %v", err)
	}
	if len(got) != want {
		t.Fatalf("try-face sink observed %d values, blocking run %d", len(got), want)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("try-face sink value %d = %d, want %d (same trace as blocking)", i, v, i)
		}
	}
}

// TestGenTryWouldBlockKeepsStateLive pins the one-shot semantics of the
// stepping face from a single goroutine: a would-blocked Try leaves the
// state usable, success consumes it, and the consumed value faults with
// genrt.ErrStateConsumed — including through its Try methods.
func TestGenTryWouldBlockKeepsStateLive(t *testing.T) {
	net := genstreaming.NewNetwork()
	// Drive both roles from this goroutine via nested generated runners:
	// nothing below blocks, which is itself part of what is being pinned.
	err := genstreaming.RunT(net, func(t0 genstreaming.T0) (genstreaming.TEnd, error) {
		// Nothing sent yet: the sink's branch must refuse without consuming.
		t2, err := t0.SendReady()
		if err != nil {
			return genstreaming.TEnd{}, err
		}
		for i := 0; i < 3; i++ {
			if _, err := t2.TryBranch(); !errors.Is(err, session.ErrWouldBlock) {
				return genstreaming.TEnd{}, errors.New("TryBranch on empty route did not would-block")
			}
		}
		// Run the source far enough to publish one value, from this same
		// goroutine — nothing here blocks.
		errS := genstreaming.RunS(net, func(s genstreaming.S0) (genstreaming.SEnd, error) {
			s1, err := s.TrySendValue(41)
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			// The state that produced s1 is consumed: its Try face must
			// fault rather than re-send.
			//sessvet:ignore stateconsumed -- this reuse is the fault under test
			if _, err := s.TrySendValue(99); !errors.Is(err, genrt.ErrStateConsumed) {
				return genstreaming.SEnd{}, errors.New("consumed state's TrySend did not fault")
			}
			// Abandon mid-protocol (the source is not needed further).
			_ = s1
			return genstreaming.SEnd{}, session.ErrStopped
		})
		if errS != nil && !errors.Is(errS, session.ErrStopped) {
			return genstreaming.TEnd{}, errS
		}
		// The parked branch state is still live and now succeeds.
		b, err := t2.TryBranch()
		if err != nil {
			return genstreaming.TEnd{}, err
		}
		if b.Label != genstreaming.LabelValue || b.ValuePayload != 41 {
			return genstreaming.TEnd{}, errors.New("retried TryBranch did not deliver the published value")
		}
		return genstreaming.TEnd{}, session.ErrStopped
	})
	if err != nil && !errors.Is(err, session.ErrStopped) {
		t.Fatalf("stepped single-goroutine run: %v", err)
	}
}
