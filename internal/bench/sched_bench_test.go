package bench

// The BENCH_sched.json benchmarks: sessions/sec vs concurrent-session count
// at several GOMAXPROCS settings (`make bench-sched`). The sched column is
// the scheduler (fixed worker pool, non-blocking stepping); the goroutines
// column is the classic 2-goroutines-per-session blocking shape, capped at
// 10k sessions where its 2n parked goroutines stop being a sensible
// baseline (100k sessions would park 200k goroutines).

import (
	"fmt"
	"runtime"
	"testing"
)

// schedSessionCounts is the session-count axis (1 → 100k).
var schedSessionCounts = []int{1, 100, 10000, 100000}

// schedProcSettings is the GOMAXPROCS / worker-pool axis.
var schedProcSettings = []int{1, 2, 4}

func BenchmarkSchedThroughput(b *testing.B) {
	for _, procs := range schedProcSettings {
		for _, n := range schedSessionCounts {
			b.Run(fmt.Sprintf("sessions=%d/procs=%d", n, procs), func(b *testing.B) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := SchedThroughput(procs, n); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
			})
		}
	}
}

func BenchmarkSchedGoroutineBaseline(b *testing.B) {
	for _, n := range schedSessionCounts {
		if n > 10000 {
			continue
		}
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SchedGoroutineBaseline(n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
		})
	}
}

// TestSchedThroughputSmall is the tier-1 pin that the benchmark harness
// itself is sound: a small run completes with every session ending cleanly.
func TestSchedThroughputSmall(t *testing.T) {
	for _, workers := range []int{1, 3} {
		if _, err := SchedThroughput(workers, 64); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	if _, err := SchedGoroutineBaseline(32); err != nil {
		t.Fatal(err)
	}
}
