package bench

// The BENCH_sched.json benchmarks: sessions/sec vs concurrent-session count
// at several GOMAXPROCS settings (`make bench-sched`). The sched column is
// the scheduler (fixed worker pool, non-blocking stepping); the goroutines
// column is the classic 2-goroutines-per-session blocking shape, capped at
// 10k sessions where its 2n parked goroutines stop being a sensible
// baseline (100k sessions would park 200k goroutines).

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/sched"
)

// schedSessionCounts is the session-count axis (1 → 100k).
var schedSessionCounts = []int{1, 100, 10000, 100000}

// schedProcSettings is the GOMAXPROCS / worker-pool axis.
var schedProcSettings = []int{1, 2, 4}

func BenchmarkSchedThroughput(b *testing.B) {
	for _, procs := range schedProcSettings {
		for _, n := range schedSessionCounts {
			b.Run(fmt.Sprintf("sessions=%d/procs=%d", n, procs), func(b *testing.B) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := SchedThroughput(procs, n); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
			})
		}
	}
}

// schedPooledCounts is the pooled session-count axis: the flat-throughput
// claim is about the high end, so it starts where the unpooled axis gets
// expensive and rides to one million concurrent sessions (resident memory
// stays Backlog×Workers instances, so the row completes on a small box).
var schedPooledCounts = []int{10000, 100000, 1000000}

func stealName(noSteal bool) string {
	if noSteal {
		return "off"
	}
	return "on"
}

func BenchmarkSchedPooledThroughput(b *testing.B) {
	for _, procs := range schedProcSettings {
		for _, noSteal := range []bool{false, true} {
			for _, n := range schedPooledCounts {
				if n == 1000000 && procs != 1 {
					// One 1M row per steal setting is the scaling witness;
					// repeating it per GOMAXPROCS only slows the suite.
					continue
				}
				name := fmt.Sprintf("sessions=%d/procs=%d/steal=%s", n, procs, stealName(noSteal))
				b.Run(name, func(b *testing.B) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := SchedThroughputPooled(procs, n, noSteal); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
				})
			}
		}
	}
}

// BenchmarkSchedPooledSteady is the allocation column behind the pooling
// claim: one warmed worker running the streaming protocol through the
// pooled enqueue path, synchronously — allocs/op and B/op must both read 0
// (the tier-1 pin TestSchedPooledZeroAllocSteadyState asserts the same
// property via testing.AllocsPerRun; this row makes it visible in
// BENCH_sched.json and gateable by cmd/benchcheck).
func BenchmarkSchedPooledSteady(b *testing.B) {
	base, err := schedBaseSession()
	if err != nil {
		b.Fatal(err)
	}
	s := sched.New(sched.Options{Workers: 1, NoSteal: true})
	defer s.Close()
	done := make(chan error, 1)
	onDone := func(err error) { done <- err }
	run := func() error {
		if err := s.GoSessionPooled(base, schedSessionBudget, schedStrategy, time.Time{}, onDone); err != nil {
			return err
		}
		return <-done
	}
	for i := 0; i < 64; i++ { // warm the pool and the worker's slices
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
	// One session per op, so the row carries the same rate metric as the
	// rest of the sched matrix (BENCH_sched.json is gated on it).
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
}

func BenchmarkSchedGoroutineBaseline(b *testing.B) {
	for _, n := range schedSessionCounts {
		if n > 10000 {
			continue
		}
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SchedGoroutineBaseline(n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
		})
	}
}

// TestSchedThroughputSmall is the tier-1 pin that the benchmark harness
// itself is sound: a small run completes with every session ending cleanly,
// on the forking, pooled (both steal settings) and goroutine-baseline paths.
func TestSchedThroughputSmall(t *testing.T) {
	for _, workers := range []int{1, 3} {
		if _, err := SchedThroughput(workers, 64); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, noSteal := range []bool{false, true} {
			if _, err := SchedThroughputPooled(workers, 64, noSteal); err != nil {
				t.Fatalf("workers=%d noSteal=%v: %v", workers, noSteal, err)
			}
		}
	}
	if _, err := SchedGoroutineBaseline(32); err != nil {
		t.Fatal(err)
	}
}
