package bench

// This file is the RumpsteakGen column of Fig. 6: the same protocols as the
// Rumpsteak analogue, but driven through the typed state-pattern APIs that
// cmd/sessgen generates (examples/gen/...). Conformance is enforced by the
// generated types at compile time, so the runtime performs no per-message
// monitor step — the head-to-head against the fully monitored Session runs
// (SessionStreaming and BenchmarkSessionRunStreaming) isolates exactly what
// the paper's static-safety story buys on the hot path. Note two deliberate
// differences from the raw Rumpsteak columns: the generated code follows the
// verified FSM message by message (no SendN/ReceiveN batching of same-label
// runs), and the streaming schedule is whatever the checked-in generated
// package encodes (the derived AMR type pipelines two values ahead of their
// readys and one in the loop), not the unroll parameter.

import (
	"fmt"

	gendb "repro/examples/gen/doublebuffer"
	genelev "repro/examples/gen/elevator"
	genfft "repro/examples/gen/fft"
	genring "repro/examples/gen/ring"
	genstreaming "repro/examples/gen/streaming"
	"repro/internal/fft"
)

// GenStreaming runs the streaming protocol once over the generated
// monitor-free API, returning the number of values the sink received. The
// generated source encodes the derived AMR schedule, which hoists two value
// sends ahead of the loop, so n must be at least 2.
func GenStreaming(n int) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("bench: the generated streaming source pipelines 2 values ahead of its readys; need n >= 2, got %d", n)
	}
	net := genstreaming.NewNetwork()
	received := 0
	err := genstreaming.Run(net, genstreaming.Procs{
		S: func(s genstreaming.S0) (genstreaming.SEnd, error) {
			s1, err := s.SendValue(0)
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			loop, err := s1.SendValue(1)
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			for i := 2; i < n; i++ {
				s4, err := loop.SendValue(int32(i))
				if err != nil {
					return genstreaming.SEnd{}, err
				}
				loop, err = s4.RecvReady()
				if err != nil {
					return genstreaming.SEnd{}, err
				}
			}
			s5, err := loop.SendStop()
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			// Drain the readys matching the pipelined sends, then the final
			// ready — the End value is only reachable through all three.
			s6, err := s5.RecvReady()
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			s7, err := s6.RecvReady()
			if err != nil {
				return genstreaming.SEnd{}, err
			}
			return s7.RecvReady()
		},
		T: func(t genstreaming.T0) (genstreaming.TEnd, error) {
			for {
				t2, err := t.SendReady()
				if err != nil {
					return genstreaming.TEnd{}, err
				}
				b, err := t2.Branch()
				if err != nil {
					return genstreaming.TEnd{}, err
				}
				if b.Label == genstreaming.LabelStop {
					return b.StopNext, nil
				}
				received++
				t = b.ValueNext
			}
		},
	})
	if err != nil {
		return received, err
	}
	if received != n {
		return received, fmt.Errorf("bench: generated sink received %d of %d", received, n)
	}
	return received, nil
}

// GenDoubleBuffering runs the double-buffering protocol over the generated
// API for two iterations of n values each (2n loop turns of the verified
// FSM, one value per turn), returning the values moved end to end.
func GenDoubleBuffering(n int) (int, error) {
	const iters = 2
	turns := iters * n
	net := gendb.NewNetwork()
	moved := 0
	err := gendb.Run(net, gendb.Procs{
		K: func(k gendb.K0) error {
			for i := 0; i < turns; i++ {
				k2, err := k.SendReady()
				if err != nil {
					return err
				}
				k3, err := k2.RecvValue()
				if err != nil {
					return err
				}
				k4, err := k3.RecvReady()
				if err != nil {
					return err
				}
				if k, err = k4.SendValue(); err != nil {
					return err
				}
			}
			return nil
		},
		S: func(s gendb.S0) error {
			for i := 0; i < turns; i++ {
				s2, err := s.RecvReady()
				if err != nil {
					return err
				}
				if s, err = s2.SendValue(); err != nil {
					return err
				}
			}
			return nil
		},
		T: func(t gendb.T0) error {
			for i := 0; i < turns; i++ {
				t2, err := t.SendReady()
				if err != nil {
					return err
				}
				if t, err = t2.RecvValue(); err != nil {
					return err
				}
				moved++
			}
			return nil
		},
	})
	if err != nil {
		return moved, err
	}
	return moved, nil
}

// GenRing circulates the ring token for laps rounds over the generated API
// and returns the completed lap count.
func GenRing(laps int) (int, error) {
	net := genring.NewNetwork()
	done := 0
	err := genring.Run(net, genring.Procs{
		A: func(a genring.A0) error {
			for i := 0; i < laps; i++ {
				a2, err := a.SendV()
				if err != nil {
					return err
				}
				if a, err = a2.RecvV(); err != nil {
					return err
				}
				done++
			}
			return nil
		},
		B: func(b genring.B0) error {
			for i := 0; i < laps; i++ {
				b2, err := b.RecvV()
				if err != nil {
					return err
				}
				if b, err = b2.SendV(); err != nil {
					return err
				}
			}
			return nil
		},
		C: func(c genring.C0) error {
			for i := 0; i < laps; i++ {
				c2, err := c.RecvV()
				if err != nil {
					return err
				}
				if c, err = c2.SendV(); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		return done, err
	}
	return done, nil
}

// fftGenStage computes worker j's column after stage si of the butterfly,
// given its own and its partner's columns — the same arithmetic, in the same
// operand order, as the sequential transform, so generated and sequential
// results agree bit for bit.
func fftGenStage(j, si int, mine, theirs []complex128) []complex128 {
	next := make([]complex128, len(mine))
	fft.StageOutput(8, j, fft.Stages(8)[si], mine, theirs, next)
	return next
}

// GenFFT runs the eight-process butterfly over the generated monitor-free
// API (examples/gen/fft, the registry's AMR all-send-first schedule baked
// into the types) and returns the transformed columns in worker order —
// bit-reversed positions, as the parallel schedule leaves them; callers
// needing natural order apply fft.BitReverse. Whole columns travel as
// single vec<complex128> messages, typed []complex128 end to end.
//
// Each worker's three exchanges walk distinct generated state types, so the
// eight processes are written out rather than looped; the protocol states
// differ per worker even though the schedule is uniform.
func GenFFT(cols [][]complex128) ([][]complex128, error) {
	if len(cols) != 8 {
		return nil, fmt.Errorf("bench: generated FFT wants 8 columns, got %d", len(cols))
	}
	net := genfft.NewNetwork()
	out := make([][]complex128, 8)
	err := genfft.Run(net, genfft.Procs{
		W0: func(s genfft.W00) (genfft.W0End, error) {
			cur := cols[0]
			s1, err := s.SendCol(cur)
			if err != nil {
				return genfft.W0End{}, err
			}
			theirs, s2, err := s1.RecvCol()
			if err != nil {
				return genfft.W0End{}, err
			}
			cur = fftGenStage(0, 0, cur, theirs)
			s3, err := s2.SendCol(cur)
			if err != nil {
				return genfft.W0End{}, err
			}
			theirs, s4, err := s3.RecvCol()
			if err != nil {
				return genfft.W0End{}, err
			}
			cur = fftGenStage(0, 1, cur, theirs)
			s5, err := s4.SendCol(cur)
			if err != nil {
				return genfft.W0End{}, err
			}
			theirs, end, err := s5.RecvCol()
			if err != nil {
				return genfft.W0End{}, err
			}
			out[0] = fftGenStage(0, 2, cur, theirs)
			return end, nil
		},
		W1: func(s genfft.W10) (genfft.W1End, error) {
			cur := cols[1]
			s1, err := s.SendCol(cur)
			if err != nil {
				return genfft.W1End{}, err
			}
			theirs, s2, err := s1.RecvCol()
			if err != nil {
				return genfft.W1End{}, err
			}
			cur = fftGenStage(1, 0, cur, theirs)
			s3, err := s2.SendCol(cur)
			if err != nil {
				return genfft.W1End{}, err
			}
			theirs, s4, err := s3.RecvCol()
			if err != nil {
				return genfft.W1End{}, err
			}
			cur = fftGenStage(1, 1, cur, theirs)
			s5, err := s4.SendCol(cur)
			if err != nil {
				return genfft.W1End{}, err
			}
			theirs, end, err := s5.RecvCol()
			if err != nil {
				return genfft.W1End{}, err
			}
			out[1] = fftGenStage(1, 2, cur, theirs)
			return end, nil
		},
		W2: func(s genfft.W20) (genfft.W2End, error) {
			cur := cols[2]
			s1, err := s.SendCol(cur)
			if err != nil {
				return genfft.W2End{}, err
			}
			theirs, s2, err := s1.RecvCol()
			if err != nil {
				return genfft.W2End{}, err
			}
			cur = fftGenStage(2, 0, cur, theirs)
			s3, err := s2.SendCol(cur)
			if err != nil {
				return genfft.W2End{}, err
			}
			theirs, s4, err := s3.RecvCol()
			if err != nil {
				return genfft.W2End{}, err
			}
			cur = fftGenStage(2, 1, cur, theirs)
			s5, err := s4.SendCol(cur)
			if err != nil {
				return genfft.W2End{}, err
			}
			theirs, end, err := s5.RecvCol()
			if err != nil {
				return genfft.W2End{}, err
			}
			out[2] = fftGenStage(2, 2, cur, theirs)
			return end, nil
		},
		W3: func(s genfft.W30) (genfft.W3End, error) {
			cur := cols[3]
			s1, err := s.SendCol(cur)
			if err != nil {
				return genfft.W3End{}, err
			}
			theirs, s2, err := s1.RecvCol()
			if err != nil {
				return genfft.W3End{}, err
			}
			cur = fftGenStage(3, 0, cur, theirs)
			s3, err := s2.SendCol(cur)
			if err != nil {
				return genfft.W3End{}, err
			}
			theirs, s4, err := s3.RecvCol()
			if err != nil {
				return genfft.W3End{}, err
			}
			cur = fftGenStage(3, 1, cur, theirs)
			s5, err := s4.SendCol(cur)
			if err != nil {
				return genfft.W3End{}, err
			}
			theirs, end, err := s5.RecvCol()
			if err != nil {
				return genfft.W3End{}, err
			}
			out[3] = fftGenStage(3, 2, cur, theirs)
			return end, nil
		},
		W4: func(s genfft.W40) (genfft.W4End, error) {
			cur := cols[4]
			s1, err := s.SendCol(cur)
			if err != nil {
				return genfft.W4End{}, err
			}
			theirs, s2, err := s1.RecvCol()
			if err != nil {
				return genfft.W4End{}, err
			}
			cur = fftGenStage(4, 0, cur, theirs)
			s3, err := s2.SendCol(cur)
			if err != nil {
				return genfft.W4End{}, err
			}
			theirs, s4, err := s3.RecvCol()
			if err != nil {
				return genfft.W4End{}, err
			}
			cur = fftGenStage(4, 1, cur, theirs)
			s5, err := s4.SendCol(cur)
			if err != nil {
				return genfft.W4End{}, err
			}
			theirs, end, err := s5.RecvCol()
			if err != nil {
				return genfft.W4End{}, err
			}
			out[4] = fftGenStage(4, 2, cur, theirs)
			return end, nil
		},
		W5: func(s genfft.W50) (genfft.W5End, error) {
			cur := cols[5]
			s1, err := s.SendCol(cur)
			if err != nil {
				return genfft.W5End{}, err
			}
			theirs, s2, err := s1.RecvCol()
			if err != nil {
				return genfft.W5End{}, err
			}
			cur = fftGenStage(5, 0, cur, theirs)
			s3, err := s2.SendCol(cur)
			if err != nil {
				return genfft.W5End{}, err
			}
			theirs, s4, err := s3.RecvCol()
			if err != nil {
				return genfft.W5End{}, err
			}
			cur = fftGenStage(5, 1, cur, theirs)
			s5, err := s4.SendCol(cur)
			if err != nil {
				return genfft.W5End{}, err
			}
			theirs, end, err := s5.RecvCol()
			if err != nil {
				return genfft.W5End{}, err
			}
			out[5] = fftGenStage(5, 2, cur, theirs)
			return end, nil
		},
		W6: func(s genfft.W60) (genfft.W6End, error) {
			cur := cols[6]
			s1, err := s.SendCol(cur)
			if err != nil {
				return genfft.W6End{}, err
			}
			theirs, s2, err := s1.RecvCol()
			if err != nil {
				return genfft.W6End{}, err
			}
			cur = fftGenStage(6, 0, cur, theirs)
			s3, err := s2.SendCol(cur)
			if err != nil {
				return genfft.W6End{}, err
			}
			theirs, s4, err := s3.RecvCol()
			if err != nil {
				return genfft.W6End{}, err
			}
			cur = fftGenStage(6, 1, cur, theirs)
			s5, err := s4.SendCol(cur)
			if err != nil {
				return genfft.W6End{}, err
			}
			theirs, end, err := s5.RecvCol()
			if err != nil {
				return genfft.W6End{}, err
			}
			out[6] = fftGenStage(6, 2, cur, theirs)
			return end, nil
		},
		W7: func(s genfft.W70) (genfft.W7End, error) {
			cur := cols[7]
			s1, err := s.SendCol(cur)
			if err != nil {
				return genfft.W7End{}, err
			}
			theirs, s2, err := s1.RecvCol()
			if err != nil {
				return genfft.W7End{}, err
			}
			cur = fftGenStage(7, 0, cur, theirs)
			s3, err := s2.SendCol(cur)
			if err != nil {
				return genfft.W7End{}, err
			}
			theirs, s4, err := s3.RecvCol()
			if err != nil {
				return genfft.W7End{}, err
			}
			cur = fftGenStage(7, 1, cur, theirs)
			s5, err := s4.SendCol(cur)
			if err != nil {
				return genfft.W7End{}, err
			}
			theirs, end, err := s5.RecvCol()
			if err != nil {
				return genfft.W7End{}, err
			}
			out[7] = fftGenStage(7, 2, cur, theirs)
			return end, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenElevator drives the elevator control loop for calls panel presses
// (alternating up and down) over the generated API, returning the number of
// door cycles the door actually performed.
func GenElevator(calls int) (int, error) {
	net := genelev.NewNetwork()
	opens := 0
	err := genelev.Run(net, genelev.Procs{
		P: func(p genelev.P0) error {
			var err error
			for i := 0; i < calls; i++ {
				if i%2 == 0 {
					p, err = p.SendUp()
				} else {
					p, err = p.SendDown()
				}
				if err != nil {
					return err
				}
			}
			return nil
		},
		E: func(e genelev.E0) error {
			for i := 0; i < calls; i++ {
				b, err := e.Branch()
				if err != nil {
					return err
				}
				switch b.Label {
				case genelev.LabelUp:
					e3, err := b.UpNext.SendOpen()
					if err != nil {
						return err
					}
					if e, err = e3.RecvDone(); err != nil {
						return err
					}
				case genelev.LabelDown:
					e5, err := b.DownNext.SendOpen()
					if err != nil {
						return err
					}
					if e, err = e5.RecvDone(); err != nil {
						return err
					}
				}
			}
			return nil
		},
		D: func(d genelev.D0) error {
			for i := 0; i < calls; i++ {
				d2, err := d.RecvOpen()
				if err != nil {
					return err
				}
				if d, err = d2.SendDone(); err != nil {
					return err
				}
				opens++
			}
			return nil
		},
	})
	if err != nil {
		return opens, err
	}
	if opens != calls {
		return opens, fmt.Errorf("bench: door opened %d of %d times", opens, calls)
	}
	return opens, nil
}
