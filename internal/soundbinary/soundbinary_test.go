package soundbinary

import (
	"testing"

	"repro/internal/types"
)

func check(t *testing.T, sub, sup string) bool {
	t.Helper()
	res, err := CheckTypes("self", types.MustParse(sub), types.MustParse(sup), Options{})
	if err != nil {
		t.Fatalf("CheckTypes(%q, %q): %v", sub, sup, err)
	}
	return res.OK
}

func TestIdentity(t *testing.T) {
	for _, src := range []string{
		"end",
		"p!a.end",
		"mu x.p?r.p!v.x",
		"mu t.p?{d0.p!a0.t, d1.p!a1.t}",
	} {
		if !check(t, src, src) {
			t.Errorf("T ≤ T failed for %s", src)
		}
	}
}

func TestExample2(t *testing.T) {
	if !check(t, "p!l2.p?l1.end", "p?l1.p!l2.end") {
		t.Error("safe output anticipation rejected")
	}
	if check(t, "p?l2.p!l1.end", "p!l1.p?l2.end") {
		t.Error("unsafe input anticipation accepted")
	}
}

func TestChoiceWidthSubtyping(t *testing.T) {
	if !check(t, "p!{a.end}", "p!{a.end, b.end}") {
		t.Error("output subset rejected")
	}
	if check(t, "p!{a.end, b.end}", "p!{a.end}") {
		t.Error("output superset accepted")
	}
	if !check(t, "p?{a.end, b.end}", "p?{a.end}") {
		t.Error("input superset rejected")
	}
	if check(t, "p?{a.end}", "p?{a.end, b.end}") {
		t.Error("input subset accepted")
	}
}

func TestUnrolledStreaming(t *testing.T) {
	// The Fig. 7 streaming benchmark shape: the unrolled source against its
	// projection.
	sup := types.MustParse("mu x.p?ready.p!value.x")
	sub := sup
	for i := 0; i < 5; i++ {
		sub = types.LSend("p", "value", types.Unit, sub)
	}
	res, err := CheckTypes("s", sub, sup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Error("unrolled streaming rejected")
	}
}

func TestHospitalUnboundedAccumulation(t *testing.T) {
	// The Hospital example [7, §1]: the optimised patient defers unboundedly
	// many acknowledgements. SoundBinary (alone among the three verifiers)
	// accepts it — this is the ✔ in Table 1's last row.
	sub := "mu t.h!{d.t, stop.mu u.h?{ok.u, done.end}}"
	sup := "mu t.h!{d.h?ok.t, stop.h?done.end}"
	if !check(t, sub, sup) {
		t.Error("hospital subtyping rejected")
	}
}

func TestHospitalUnsoundDualRejected(t *testing.T) {
	// Swapping roles (receiving everything first) must be rejected: inputs
	// cannot be anticipated past outputs.
	sub := "mu t.h?{ok.t, done.h!stop.end}"
	sup := "mu t.h!{d.h?ok.t, stop.h?done.end}"
	if check(t, sub, sup) {
		t.Error("unsound dual accepted")
	}
}

func TestRejectsMultiparty(t *testing.T) {
	sub := types.MustParse("p!a.q!b.end")
	sup := types.MustParse("p!a.q!b.end")
	if _, err := CheckTypes("self", sub, sup, Options{}); err == nil {
		t.Error("multiparty type accepted by binary checker")
	}
}

func TestLabelMismatch(t *testing.T) {
	if check(t, "p!a.end", "p!b.end") {
		t.Error("label mismatch accepted")
	}
	if check(t, "p?a.end", "p?b.end") {
		t.Error("input label mismatch accepted")
	}
}

func TestEndMismatch(t *testing.T) {
	if check(t, "end", "p!a.end") {
		t.Error("end ≤ output accepted")
	}
	if check(t, "p!a.end", "end") {
		t.Error("output ≤ end accepted")
	}
}

func TestSortSubtyping(t *testing.T) {
	if !check(t, "p!l(nat).end", "p!l(int).end") {
		t.Error("covariant output rejected")
	}
	if check(t, "p!l(int).end", "p!l(nat).end") {
		t.Error("unsound output sort accepted")
	}
	if !check(t, "p?l(int).end", "p?l(nat).end") {
		t.Error("contravariant input rejected")
	}
}

func TestInputLoopBlocksOutput(t *testing.T) {
	// The supertype only ever receives; an output can never be anticipated.
	if check(t, "p!a.end", "mu x.p?r.x") {
		t.Error("output anticipated past an input-only loop")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	sub := types.MustParse("mu t.h!{d.t, stop.mu u.h?{ok.u, done.end}}")
	sup := types.MustParse("mu t.h!{d.h?ok.t, stop.h?done.end}")
	res, err := CheckTypes("p", sub, sup, Options{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("budget 10 should be insufficient for hospital")
	}
	if res.Steps == 0 {
		t.Error("steps not counted")
	}
}

func TestStatsGrowWithUnrolls(t *testing.T) {
	sup := types.MustParse("mu x.p?ready.p!value.x")
	prev := 0
	for _, n := range []int{5, 20, 40} {
		sub := types.Local(sup)
		for i := 0; i < n; i++ {
			sub = types.LSend("p", "value", types.Unit, sub)
		}
		res, err := CheckTypes("s", sub, sup, Options{})
		if err != nil || !res.OK {
			t.Fatalf("unroll %d rejected (err=%v)", n, err)
		}
		if res.Steps <= prev {
			t.Errorf("steps did not grow: n=%d steps=%d prev=%d", n, res.Steps, prev)
		}
		prev = res.Steps
	}
}
