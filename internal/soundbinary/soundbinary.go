// Package soundbinary implements a sound algorithm for *binary* asynchronous
// session subtyping in the style of Bravetti, Carbone, Lange, Yoshida and
// Zavattaro (LMCS 17(1), 2021) — the "SoundBinary" baseline of §4.2.
//
// The checker simulates the candidate subtype against the supertype while
// maintaining an explicit *input context*: a tree of the supertype's pending
// external choices that the subtype has anticipated outputs past. Contexts
// are copied and re-serialised at every step, which is what makes the tool
// scale super-linearly in the number of anticipated messages and
// exponentially under nested choice — the behaviour Fig. 7 measures.
//
// Unlike the multiparty algorithm in internal/core, this baseline supports
// *unbounded* accumulation for two-party protocols: a periodic-growth witness
// detects input contexts that grow by a repeating segment and concludes
// coinductively (this is a simplification of the original paper's witness
// trees; it covers chain-shaped contexts such as the Hospital example, and
// falls back to a step budget otherwise). It rejects any protocol with more
// than two participants.
package soundbinary

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/fsm"
	"repro/internal/types"
)

// ErrNotBinary is returned when a machine communicates with more than one
// peer: the algorithm is defined for two-party sessions only.
var ErrNotBinary = errors.New("soundbinary: protocol is not two-party")

// DefaultBudget bounds the total number of simulation steps.
const DefaultBudget = 2_000_000

// Options configures the checker.
type Options struct {
	// Budget bounds the number of simulation steps; zero means DefaultBudget.
	Budget int
}

// Result reports the verdict and the work performed.
type Result struct {
	OK    bool
	Steps int
}

// Check reports whether sub is an asynchronous subtype of sup, both machines
// describing one endpoint of a two-party session.
func Check(sub, sup *fsm.FSM, opts Options) (Result, error) {
	if err := binaryDirected(sub); err != nil {
		return Result{}, err
	}
	if err := binaryDirected(sup); err != nil {
		return Result{}, err
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	v := &checker{sub: sub, sup: sup, budget: budget, path: map[string]bool{}, growth: map[string]growth{}}
	ok := v.visit(sub.Initial(), leaf(sup.Initial()))
	return Result{OK: ok, Steps: v.steps}, nil
}

// CheckTypes is Check on local types.
func CheckTypes(role types.Role, sub, sup types.Local, opts Options) (Result, error) {
	msub, err := fsm.FromLocal(role, sub)
	if err != nil {
		return Result{}, err
	}
	msup, err := fsm.FromLocal(role, sup)
	if err != nil {
		return Result{}, err
	}
	return Check(msub, msup, opts)
}

func binaryDirected(m *fsm.FSM) error {
	if !m.Directed() {
		return fmt.Errorf("soundbinary: machine %s is not directed", m.Role())
	}
	var peer types.Role
	for s := 0; s < m.NumStates(); s++ {
		for _, t := range m.Transitions(fsm.State(s)) {
			if peer == "" {
				peer = t.Act.Peer
			} else if t.Act.Peer != peer {
				return fmt.Errorf("%w: machine %s talks to both %s and %s", ErrNotBinary, m.Role(), peer, t.Act.Peer)
			}
		}
	}
	return nil
}

// ctx is an input context: a tree of the supertype's pending external
// choices. A leaf holds the supertype's continuation state.
type ctx struct {
	state    fsm.State // valid when leaf
	children []ctxEdge // non-empty when an interior node
}

type ctxEdge struct {
	label types.Label
	child *ctx
}

func leaf(s fsm.State) *ctx { return &ctx{state: s} }

func (c *ctx) isLeaf() bool { return len(c.children) == 0 }

// key serialises the context canonically. This O(size) re-serialisation at
// every step is deliberate: it reproduces the baseline's cost model.
func (c *ctx) key() string {
	var b strings.Builder
	c.render(&b)
	return b.String()
}

func (c *ctx) render(b *strings.Builder) {
	if c.isLeaf() {
		fmt.Fprintf(b, "#%d", c.state)
		return
	}
	b.WriteByte('[')
	for _, e := range c.children {
		b.WriteString(string(e.label))
		b.WriteByte(':')
		e.child.render(b)
		b.WriteByte(' ')
	}
	b.WriteByte(']')
}

// chain reports whether the context is a single path (each node has exactly
// one child), returning the label word and the final leaf state.
func (c *ctx) chain() (word []types.Label, end fsm.State, ok bool) {
	cur := c
	for !cur.isLeaf() {
		if len(cur.children) != 1 {
			return nil, 0, false
		}
		word = append(word, cur.children[0].label)
		cur = cur.children[0].child
	}
	return word, cur.state, true
}

// growth records the last chain word seen for a (subtype state, leaf state)
// pair and the segment by which it last grew.
type growth struct {
	word   string
	period string
}

type checker struct {
	sub, sup *fsm.FSM
	budget   int
	steps    int
	path     map[string]bool
	growth   map[string]growth
}

func (v *checker) visit(s fsm.State, c *ctx) bool {
	v.steps++
	if v.steps > v.budget {
		return false
	}
	key := fmt.Sprintf("%d|%s", s, c.key())
	if v.path[key] {
		return true // exact repeat on the path: conclude coinductively
	}

	// Periodic-growth witness for chain contexts: if the same (subtype
	// state, leaf) is revisited with the context grown by the same segment
	// twice in a row, the accumulation is periodic and the simulation will
	// repeat forever; conclude success.
	if word, endState, isChain := c.chain(); isChain && len(word) > 0 {
		gk := fmt.Sprintf("%d/%d", s, endState)
		w := labelWord(word)
		if prev, seen := v.growth[gk]; seen && strings.HasPrefix(w, prev.word) && len(w) > len(prev.word) {
			u := w[len(prev.word):]
			if prev.period == u {
				return true
			}
			v.growth[gk] = growth{word: w, period: u}
		} else if !seen {
			v.growth[gk] = growth{word: w}
		}
	}

	v.path[key] = true
	defer delete(v.path, key)

	ts := v.sub.Transitions(s)
	if len(ts) == 0 {
		return c.isLeaf() && v.sup.IsFinal(c.state)
	}
	if ts[0].Act.Dir == fsm.Recv {
		return v.visitInput(ts, c)
	}
	return v.visitOutput(ts, c)
}

// visitInput handles a subtype external choice: the pending input is the root
// of the context (or the supertype's own input state when the context is
// empty); the subtype must offer every label the supertype may select.
func (v *checker) visitInput(ts []fsm.Transition, c *ctx) bool {
	if !c.isLeaf() {
		for _, e := range c.children {
			t, ok := findLabel(ts, e.label)
			if !ok {
				return false
			}
			if !v.visit(t.To, e.child) {
				return false
			}
		}
		return true
	}
	sup := v.sup.Transitions(c.state)
	if len(sup) == 0 || sup[0].Act.Dir != fsm.Recv {
		return false // cannot anticipate an input past the supertype's outputs
	}
	for _, st := range sup {
		t, ok := findLabel(ts, st.Act.Label)
		if !ok || !types.SubSort(st.Act.Sort, t.Act.Sort) {
			return false
		}
		if !v.visit(t.To, leaf(st.To)) {
			return false
		}
	}
	return true
}

// visitOutput handles a subtype internal choice: each selected label must be
// an output the supertype offers at *every* hole of the input context, after
// pushing any further supertype inputs into the context.
func (v *checker) visitOutput(ts []fsm.Transition, c *ctx) bool {
	for _, t := range ts {
		next, ok := v.outputAt(c, t.Act, map[fsm.State]bool{})
		if !ok {
			return false
		}
		if !v.visit(t.To, next) {
			return false
		}
	}
	return true
}

// outputAt rebuilds the context after the supertype performs the output act
// at every hole. Supertype input states encountered on the way are pushed
// into the context (this is where contexts grow). unfolding guards against
// input-only loops, which can never offer the output.
func (v *checker) outputAt(c *ctx, act fsm.Action, unfolding map[fsm.State]bool) (*ctx, bool) {
	if !c.isLeaf() {
		out := &ctx{children: make([]ctxEdge, len(c.children))}
		for i, e := range c.children {
			child, ok := v.outputAt(e.child, act, unfolding)
			if !ok {
				return nil, false
			}
			out.children[i] = ctxEdge{label: e.label, child: child}
		}
		return out, true
	}
	sup := v.sup.Transitions(c.state)
	if len(sup) == 0 {
		return nil, false // supertype finished; no output possible
	}
	if sup[0].Act.Dir == fsm.Recv {
		if unfolding[c.state] {
			return nil, false // input loop: the output is unreachable
		}
		unfolding[c.state] = true
		out := &ctx{children: make([]ctxEdge, len(sup))}
		for i, st := range sup {
			child, ok := v.outputAt(leaf(st.To), act, unfolding)
			if !ok {
				return nil, false
			}
			out.children[i] = ctxEdge{label: st.Act.Label, child: child}
		}
		delete(unfolding, c.state)
		return out, true
	}
	st, ok := findLabel(sup, act.Label)
	if !ok || !types.SubSort(act.Sort, st.Act.Sort) {
		return nil, false
	}
	return leaf(st.To), true
}

func findLabel(ts []fsm.Transition, l types.Label) (fsm.Transition, bool) {
	for _, t := range ts {
		if t.Act.Label == l {
			return t, true
		}
	}
	return fsm.Transition{}, false
}

func labelWord(word []types.Label) string {
	parts := make([]string, len(word))
	for i, l := range word {
		parts[i] = string(l)
	}
	return strings.Join(parts, ".")
}
