package equiv

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/session"
	"repro/internal/types"
)

// cut_test pins the consistent-cut derivation itself — ReferenceRun's
// budgets-and-traces contract — on hand-built protocols where the cut can
// be computed by hand: budgets that stop a role mid-choice, roles the
// budget starves entirely, and recursive protocols cut at every point
// around the unroll boundary.

func mustSession(t *testing.T, g types.Global) *session.Session {
	t.Helper()
	if err := types.ValidateGlobal(g); err != nil {
		t.Fatalf("ill-formed fixture: %v", err)
	}
	sess, err := session.TopDown(g, nil, core.Options{})
	if err != nil {
		t.Fatalf("TopDown: %v", err)
	}
	return sess
}

// checkConsistent asserts the cut property on a trace set: for every
// directed channel, the receiver's observed label sequence is a prefix of
// the sender's emitted one — every receive in the cut has its send in the
// cut, and in the same order.
func checkConsistent(t *testing.T, traces map[types.Role][]string) {
	t.Helper()
	sends := map[[2]types.Role][]string{}
	recvs := map[[2]types.Role][]string{}
	for role, acts := range traces {
		for _, act := range acts {
			i := strings.IndexAny(act, "!?")
			if i < 0 {
				t.Fatalf("%s: unparseable action %q", role, act)
			}
			peer := types.Role(act[:i])
			label := act[i+1:]
			if j := strings.IndexByte(label, '('); j >= 0 {
				label = label[:j]
			}
			if act[i] == '!' {
				ch := [2]types.Role{role, peer}
				sends[ch] = append(sends[ch], label)
			} else {
				ch := [2]types.Role{peer, role}
				recvs[ch] = append(recvs[ch], label)
			}
		}
	}
	for ch, rs := range recvs {
		ss := sends[ch]
		if len(rs) > len(ss) {
			t.Fatalf("channel %s->%s: %d receives but only %d sends", ch[0], ch[1], len(rs), len(ss))
		}
		for i := range rs {
			if rs[i] != ss[i] {
				t.Fatalf("channel %s->%s: receive %d saw %q, send %d was %q", ch[0], ch[1], i, rs[i], i, ss[i])
			}
		}
	}
}

// choiceLoop is a recursive protocol whose loop body opens with a real
// choice: a picks go (loop) or stop (end) each iteration.
func choiceLoop() types.Global {
	a, b := types.Role("a"), types.Role("b")
	return types.GRec{Name: "t", Body: types.Comm{From: a, To: b, Branches: []types.GBranch{
		{Label: "go", Sort: types.I32, Cont: types.GComm(b, a, "ack", types.Unit, types.GVar{Name: "t"})},
		{Label: "stop", Sort: types.Unit, Cont: types.GEnd{}},
	}}}
}

// pingPong never terminates: every budget cuts it mid-recursion.
func pingPong() types.Global {
	a, b := types.Role("a"), types.Role("b")
	return types.GRec{Name: "t", Body: types.GComm(a, b, "ping", types.I32,
		types.GComm(b, a, "pong", types.I32, types.GVar{Name: "t"}))}
}

// TestReferenceCutMidChoice hand-computes the cut when the budget expires
// in the middle of a choice iteration: with two actions per role, a
// performs the first loop iteration's send and receive and b answers, and
// the run is severed exactly at the next choice point — b is parked
// awaiting a branch selection a's exhausted budget will never send. The
// derived cut must be the completed first iteration, nothing more.
func TestReferenceCutMidChoice(t *testing.T) {
	budgets, traces, err := ReferenceRun(mustSession(t, choiceLoop()), 2)
	if err != nil {
		t.Fatal(err)
	}
	wantTraces := map[types.Role][]string{
		"a": {"b!go(i32)", "b?ack"},
		"b": {"a?go(i32)", "a!ack"},
	}
	for role, want := range wantTraces {
		if got := strings.Join(traces[role], " "); got != strings.Join(want, " ") {
			t.Fatalf("%s: trace %q, want %q", role, got, strings.Join(want, " "))
		}
		if budgets[role] != len(want) {
			t.Fatalf("%s: budget %d, want %d", role, budgets[role], len(want))
		}
	}
	checkConsistent(t, traces)
}

// TestReferenceCutZeroBudget pins the starved-role case: c's only action
// is a receive that b — itself budget-stopped upstream — never sends, so
// the cut must assign c budget zero and an empty trace rather than hanging
// or faulting.
func TestReferenceCutZeroBudget(t *testing.T) {
	a, b, c := types.Role("a"), types.Role("b"), types.Role("c")
	g := types.GComm(a, b, "m1", types.I32,
		types.GComm(a, b, "m2", types.I32,
			types.GComm(a, b, "m3", types.I32,
				types.GComm(b, c, "done", types.Unit, types.GEnd{}))))
	budgets, traces, err := ReferenceRun(mustSession(t, g), 2)
	if err != nil {
		t.Fatal(err)
	}
	if budgets[c] != 0 || len(traces[c]) != 0 {
		t.Fatalf("starved role c: budget %d, trace %v; want 0 and empty", budgets[c], traces[c])
	}
	if budgets[a] != 2 || budgets[b] != 2 {
		t.Fatalf("upstream budgets a=%d b=%d, want 2 and 2", budgets[a], budgets[b])
	}
	checkConsistent(t, traces)
}

// TestReferenceCutUnrollBoundary sweeps the cap across recursion unroll
// boundaries of an infinite loop: at every cap both roles exhaust their
// budget exactly, every cut is consistent, the derivation is
// deterministic, and each cut's traces are prefixes of the next larger
// cut's — growing the budget only extends the cut, never rewrites it.
func TestReferenceCutUnrollBoundary(t *testing.T) {
	g := pingPong()
	var prev map[types.Role][]string
	for cap := 1; cap <= 8; cap++ {
		budgets, traces, err := ReferenceRun(mustSession(t, g), cap)
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		for role, n := range budgets {
			if n != cap {
				t.Fatalf("cap %d: role %s stopped at %d actions", cap, role, n)
			}
			if len(traces[role]) != n {
				t.Fatalf("cap %d: role %s budget %d but %d trace entries", cap, role, n, len(traces[role]))
			}
		}
		checkConsistent(t, traces)
		_, again, err := ReferenceRun(mustSession(t, g), cap)
		if err != nil {
			t.Fatalf("cap %d rerun: %v", cap, err)
		}
		for role := range traces {
			if strings.Join(traces[role], " ") != strings.Join(again[role], " ") {
				t.Fatalf("cap %d: non-deterministic cut for %s", cap, role)
			}
		}
		for role, cut := range prev {
			if len(cut) > len(traces[role]) {
				t.Fatalf("cap %d: role %s trace shrank from the previous cap", cap, role)
			}
			for i := range cut {
				if cut[i] != traces[role][i] {
					t.Fatalf("cap %d: role %s cut is not a prefix of the larger cut at %d: %q vs %q",
						cap, role, i, cut[i], traces[role][i])
				}
			}
		}
		prev = traces
	}
}

// lastOption is a TraceRecorder that always takes the final option of a
// real choice — the opposite rule to TraceStrategy's cycle.
type lastOption struct{ TraceStrategy }

func (s *lastOption) Choose(_ fsm.State, options []fsm.Transition) int {
	return len(options) - 1
}

// TestReferenceRunWithRecorder pins the strategy-factory hook: a custom
// recorder steers the run (here: always take the last branch, so the
// choice loop stops immediately) and the derived cut reflects those
// choices while staying consistent.
func TestReferenceRunWithRecorder(t *testing.T) {
	budgets, traces, err := ReferenceRunWith(mustSession(t, choiceLoop()), 10,
		func(types.Role) TraceRecorder { return &lastOption{} })
	if err != nil {
		t.Fatal(err)
	}
	want := map[types.Role]string{"a": "b!stop", "b": "a?stop"}
	for role, w := range want {
		if got := strings.Join(traces[role], " "); got != w {
			t.Fatalf("%s: trace %q, want %q", role, got, w)
		}
		if budgets[role] != 1 {
			t.Fatalf("%s: budget %d, want 1", role, budgets[role])
		}
	}
	checkConsistent(t, traces)
}
