package equiv

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"
)

// childEnv carries the ChildConfig into the re-exec'd test binary: TestMain
// sees it set and becomes a sessnet child instead of running the tests.
const childEnv = "EQUIV_SESSNET_CHILD"

func TestMain(m *testing.M) {
	if raw := os.Getenv(childEnv); raw != "" {
		var cfg ChildConfig
		if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		out, _ := json.Marshal(RunChild(cfg))
		os.Stdout.Write(out)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// selfSpawn re-execs this test binary as a sessnet child. The -test.run
// filter matches nothing: TestMain takes over before any test would run.
func selfSpawn(t *testing.T) Spawn {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(cfgJSON string) *exec.Cmd {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(), childEnv+"="+cfgJSON)
		cmd.Stderr = os.Stderr
		return cmd
	}
}

// The ISSUE acceptance criterion: the multi-process run — one OS process
// per role over the socket fabric — observes traces identical to the
// in-memory stepped reference, for at least three registry protocols.
// Two Adder is the minimal finite protocol, Three Adder adds a third
// process (and stub routes between remote peers), Ring exercises
// budget-stopped infinite recursion where the consistent cut does the
// terminating, and Ring With Choice adds branching so the deterministic
// strategy's choices must also survive the process split. Elevator's panel
// is a pure sender that finishes its whole role before any connection
// exists, pinning the close-flushes-through-pending-dial path end to end.
func TestDistributedTraceEqualsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns process fleets")
	}
	names := []string{"Two Adder", "Three Adder", "Ring", "Ring With Choice", "Elevator"}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			res, err := RunDistributed(name, "unix", t.TempDir(), 40, 30*time.Second, false, selfSpawn(t))
			if err != nil {
				t.Fatal(err)
			}
			assertDistResult(t, res)
		})
	}
}

// The polled variant: same property with the epoll receive pump driving
// the wakeups, over TCP.
func TestDistributedTraceEqualsReferencePolled(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns process fleets")
	}
	res, err := RunDistributed("Two Adder", "tcp", t.TempDir(), 40, 30*time.Second, true, selfSpawn(t))
	if err != nil {
		t.Fatal(err)
	}
	assertDistResult(t, res)
}

func assertDistResult(t *testing.T, res *DistResult) {
	t.Helper()
	if bad := res.Diverged(); len(bad) > 0 {
		for _, r := range bad {
			t.Errorf("role %s diverged:\n ref:   %v\n child: %v", r, res.Ref[r], res.Child[r])
		}
	}
	total := 0
	for r, ref := range res.Ref {
		if len(res.Child[r]) == 0 && len(ref) > 0 {
			t.Errorf("role %s: empty child trace", r)
		}
		total += len(ref)
	}
	if total == 0 {
		t.Fatal("empty reference traces: the property would hold vacuously")
	}
}
