package equiv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/netchan"
	"repro/internal/sched"
	"repro/internal/session"
	"repro/internal/types"
	"repro/internal/wire"
)

// ChildConfig tells one OS process which role of which registry protocol to
// drive, and where its peers live. It crosses the process boundary as JSON
// (cmd/sessnet's -child flag, or the test harness's environment variable).
type ChildConfig struct {
	// Protocol is the registry entry name (Table 1).
	Protocol string `json:"protocol"`
	// Role is the single role this process drives.
	Role types.Role `json:"role"`
	// Network is "unix" or "tcp" — one family per session.
	Network string `json:"network"`
	// Listen is this process's own bind address.
	Listen string `json:"listen"`
	// Peers maps every other role to its dial address.
	Peers map[types.Role]string `json:"peers"`
	// Budget caps the role at the consistent cut derived by the parent's
	// reference run, so infinite protocols terminate identically.
	Budget int `json:"budget"`
	// TimeoutMS bounds the whole child session (dial + drive); expiry fails
	// the child with a timeout instead of hanging the demo.
	TimeoutMS int `json:"timeout_ms"`
	// UsePoller selects the epoll receive pump where supported.
	UsePoller bool `json:"use_poller,omitempty"`
}

// ChildResult is what a child process reports back on stdout.
type ChildResult struct {
	Role  types.Role `json:"role"`
	Trace []string   `json:"trace"`
	Err   string     `json:"err,omitempty"`
}

// RunChild drives one role of a verified session over the socket fabric:
// it rebuilds the protocol's session from the registry (every process
// derives the same FSMs from the same types — nothing but addresses crosses
// the process boundary), rewires the session's network onto a
// netchan.Fabric, and steps its single role under the scheduler's external
// mode, woken by the fabric's readiness events.
func RunChild(cfg ChildConfig) ChildResult {
	res := ChildResult{Role: cfg.Role}
	trace, err := runChild(cfg)
	res.Trace = trace
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

func runChild(cfg ChildConfig) ([]string, error) {
	e, err := Lookup(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	sess, err := BuildSession(e)
	if err != nil {
		return nil, err
	}
	tab, err := wire.TableFromLocals(cfg.Protocol, e.Locals)
	if err != nil {
		return nil, err
	}
	timeout := time.Duration(cfg.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	fab := netchan.NewFabric(cfg.Role, tab, netchan.Options{
		DialTimeout: timeout,
		UsePoller:   cfg.UsePoller,
	})
	defer fab.Close()
	if _, err := fab.Listen(cfg.Network, cfg.Listen); err != nil {
		return nil, fmt.Errorf("listen %s %s: %w", cfg.Network, cfg.Listen, err)
	}
	for role, addr := range cfg.Peers {
		fab.SetPeer(role, addr)
	}
	sess.Rewire(func(roles ...types.Role) *session.Network {
		return session.NewCustomNetwork(fab.RouteMaker(roles), roles...)
	})
	ep, err := sess.Endpoint(cfg.Role)
	if err != nil {
		return nil, err
	}
	strat := &TraceStrategy{}
	st, err := session.NewStepper(ep, sess.FSM(cfg.Role), strat, cfg.Budget)
	if err != nil {
		return nil, err
	}
	s := sched.New(sched.Options{Workers: 1})
	defer s.Close()
	done := make(chan error, 1)
	wk, err := s.GoExternal(time.Now().Add(timeout), func(err error) { done <- err }, st)
	if err != nil {
		return nil, err
	}
	fab.SetNotify(wk.Wake)
	// Cover deliveries that landed between the session parking and the
	// notify hook installing: one manual wake forces a re-visit.
	wk.Wake()
	if err := <-done; err != nil {
		return strat.Trace(), err
	}
	return strat.Trace(), nil
}

// Spawn builds one child process from its JSON-encoded ChildConfig; the
// command must print a ChildResult as JSON on stdout. cmd/sessnet spawns
// itself with -child; the tests re-exec the test binary behind an
// environment variable.
type Spawn func(cfgJSON string) *exec.Cmd

// DistResult is a distributed run's full outcome: the consistent cut, the
// in-memory reference traces, and what each child process observed.
type DistResult struct {
	Budgets map[types.Role]int
	Ref     map[types.Role][]string
	Child   map[types.Role][]string
}

// Diverged returns the roles whose child trace differs from the reference,
// sorted; empty means the distributed run reproduced the reference exactly.
func (d *DistResult) Diverged() []types.Role {
	var bad []types.Role
	for r, ref := range d.Ref {
		got := d.Child[r]
		if len(got) != len(ref) {
			bad = append(bad, r)
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				bad = append(bad, r)
				break
			}
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad
}

// RunDistributed executes one registry protocol as one OS process per role
// over the socket fabric and compares every role's observed trace against
// the in-memory stepped reference. network is "unix" (sockets under dir) or
// "tcp" (loopback, ports pre-reserved under dir-independent :0 probing).
func RunDistributed(e string, network, dir string, maxCap int, timeout time.Duration, usePoller bool, spawn Spawn) (*DistResult, error) {
	entry, err := Lookup(e)
	if err != nil {
		return nil, err
	}
	refSess, err := BuildSession(entry)
	if err != nil {
		return nil, err
	}
	budgets, refTraces, err := ReferenceRun(refSess, maxCap)
	if err != nil {
		return nil, err
	}
	roles := refSess.Roles()
	addrs, err := assignAddrs(roles, network, dir)
	if err != nil {
		return nil, err
	}

	type childProc struct {
		role types.Role
		cmd  *exec.Cmd
		out  *bytes.Buffer
	}
	var procs []*childProc
	for _, r := range roles {
		peers := map[types.Role]string{}
		for _, p := range roles {
			if p != r {
				peers[p] = addrs[p]
			}
		}
		cfg := ChildConfig{
			Protocol:  e,
			Role:      r,
			Network:   network,
			Listen:    addrs[r],
			Peers:     peers,
			Budget:    budgets[r],
			TimeoutMS: int(timeout / time.Millisecond),
			UsePoller: usePoller,
		}
		raw, err := json.Marshal(cfg)
		if err != nil {
			return nil, err
		}
		cmd := spawn(string(raw))
		out := &bytes.Buffer{}
		cmd.Stdout = out
		procs = append(procs, &childProc{role: r, cmd: cmd, out: out})
	}
	for _, p := range procs {
		if err := p.cmd.Start(); err != nil {
			return nil, fmt.Errorf("equiv: start child %s: %w", p.role, err)
		}
	}
	childTraces := map[types.Role][]string{}
	var firstErr error
	for _, p := range procs {
		err := p.cmd.Wait()
		var res ChildResult
		if jerr := json.Unmarshal(p.out.Bytes(), &res); jerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("equiv: child %s output %q: %w (wait: %v)", p.role, p.out.String(), jerr, err)
			}
			continue
		}
		if res.Err != "" && firstErr == nil {
			firstErr = fmt.Errorf("equiv: child %s: %s", p.role, res.Err)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("equiv: child %s: %w", p.role, err)
		}
		childTraces[res.Role] = res.Trace
	}
	res := &DistResult{Budgets: budgets, Ref: refTraces, Child: childTraces}
	if firstErr != nil {
		// Partial traces still help diagnose which role stalled where.
		return res, firstErr
	}
	return res, nil
}

// assignAddrs picks one bind address per role: socket paths under dir for
// unix, pre-reserved loopback ports for tcp (reserve-then-release — the
// tiny reuse window is acceptable for a demo harness).
func assignAddrs(roles []types.Role, network, dir string) (map[types.Role]string, error) {
	addrs := map[types.Role]string{}
	switch network {
	case "unix":
		for _, r := range roles {
			addrs[r] = filepath.Join(dir, string(r)+".sock")
		}
	case "tcp":
		for _, r := range roles {
			port, err := freePort()
			if err != nil {
				return nil, err
			}
			addrs[r] = port
		}
	default:
		return nil, fmt.Errorf("equiv: unknown network %q (want unix or tcp)", network)
	}
	return addrs, nil
}

// freePort reserves a loopback TCP port by binding and releasing it.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
