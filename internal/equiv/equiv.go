// Package equiv is the trace-equivalence machinery behind the repo's
// strongest cross-cutting property: however a verified session is executed
// — blocking goroutines, non-blocking steppers under the scheduler, or one
// OS process per role over sockets (cmd/sessnet) — every role observes the
// same ordered action trace.
//
// The anchor is the sequential stepped reference run (ReferenceRun): a
// single goroutine round-robins every role until the session quiesces,
// which yields a consistent cut — per-role action budgets under which every
// receive in the cut has its matching send in the cut. Re-running any other
// execution mode under those budgets must reproduce the reference traces
// exactly; internal/sched pins this for the in-process scheduler, and
// RunDistributed pins it across process boundaries over internal/netchan.
package equiv

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/session"
	"repro/internal/types"
)

// TraceStrategy makes deterministic choices (cycling the options of real
// choices only) and records every performed action in order. Deterministic
// choice is what makes traces comparable across execution modes: every
// driver of the same role takes the same branch at the same point.
type TraceStrategy struct {
	n     int
	trace []string
}

// Choose cycles through the options of real choices; singleton option sets
// (no choice) do not advance the cycle.
func (s *TraceStrategy) Choose(_ fsm.State, options []fsm.Transition) int {
	if len(options) == 1 {
		return 0
	}
	s.n++
	return (s.n - 1) % len(options)
}

// Payload is consulted exactly once per performed send (the stepper caches
// the decision across would-block retries), so it doubles as the send
// recorder.
func (s *TraceStrategy) Payload(act fsm.Action) any {
	s.trace = append(s.trace, act.String())
	return nil
}

// Received records a completed receive.
func (s *TraceStrategy) Received(act fsm.Action, _ any) {
	s.trace = append(s.trace, act.String())
}

// Trace returns the actions recorded so far, in order.
func (s *TraceStrategy) Trace() []string { return s.trace }

// Lookup finds a registry protocol by its Table-1 name.
func Lookup(name string) (protocols.Entry, error) {
	for _, e := range protocols.Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return protocols.Entry{}, fmt.Errorf("equiv: unknown registry protocol %q", name)
}

// BuildSession builds a monitored session for a registry entry from its
// plain (unoptimised) endpoints: top-down when a global type exists,
// bottom-up k-MC otherwise (Hospital).
func BuildSession(e protocols.Entry) (*session.Session, error) {
	if e.Global != nil {
		sess, err := session.TopDown(e.Global, nil, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("equiv: %s: TopDown: %w", e.Name, err)
		}
		return sess, nil
	}
	sess, err := session.BottomUp(e.KmcBound, protocols.Machines(protocols.FSMs(e.Locals))...)
	if err != nil {
		return nil, fmt.Errorf("equiv: %s: BottomUp: %w", e.Name, err)
	}
	return sess, nil
}

// TraceRecorder is a deterministic strategy that records the actions it
// performs. ReferenceRunWith accepts any recorder, so harnesses
// (internal/protofuzz) can substitute their own choice rule — e.g. one
// invariant under machine rewrites — while reusing the consistent-cut
// derivation.
type TraceRecorder interface {
	session.Strategy
	Trace() []string
}

// ReferenceRun steps every role sequentially (round-robin, one goroutine)
// until the session quiesces, with each role capped at maxCap actions. It
// returns the per-role action counts — the consistent cut — and the
// per-role reference traces.
func ReferenceRun(sess *session.Session, maxCap int) (map[types.Role]int, map[types.Role][]string, error) {
	return ReferenceRunWith(sess, maxCap, func(types.Role) TraceRecorder { return &TraceStrategy{} })
}

// ReferenceRunWith is ReferenceRun with a caller-supplied strategy factory;
// mk is called once per role. The factory's strategies must be
// deterministic, or the returned budgets are not a replayable cut.
func ReferenceRunWith(sess *session.Session, maxCap int, mk func(types.Role) TraceRecorder) (map[types.Role]int, map[types.Role][]string, error) {
	type refTask struct {
		st    *session.Stepper
		strat TraceRecorder
		role  types.Role
		done  bool
	}
	var tasks []*refTask
	for _, r := range sess.Roles() {
		ep, err := sess.Endpoint(r)
		if err != nil {
			return nil, nil, fmt.Errorf("equiv: %s: %w", r, err)
		}
		strat := mk(r)
		st, err := session.NewStepper(ep, sess.FSM(r), strat, maxCap)
		if err != nil {
			return nil, nil, fmt.Errorf("equiv: %s: NewStepper: %w", r, err)
		}
		tasks = append(tasks, &refTask{st: st, strat: strat, role: r})
	}
	for {
		progressed := false
		live := 0
		for _, task := range tasks {
			if task.done {
				continue
			}
			done, err := task.st.Step()
			if done {
				task.done = true
				if err != nil && !errors.Is(err, session.ErrStopped) {
					return nil, nil, fmt.Errorf("equiv: %s: reference run faulted: %w", task.role, err)
				}
				progressed = true
				continue
			}
			live++
			if errors.Is(err, session.ErrWouldBlock) {
				continue
			}
			if err != nil {
				return nil, nil, fmt.Errorf("equiv: %s: reference run: %w", task.role, err)
			}
			progressed = true
		}
		if live == 0 {
			break
		}
		if !progressed {
			// Quiescent with parked tasks: budget-stopped peers will never
			// feed them. That is the consistent cut; abort the leftovers.
			for _, task := range tasks {
				if !task.done {
					task.st.Abort()
				}
			}
			break
		}
	}
	budgets := map[types.Role]int{}
	traces := map[types.Role][]string{}
	for _, task := range tasks {
		budgets[task.role] = task.st.Steps()
		traces[task.role] = task.strat.Trace()
	}
	return budgets, traces, nil
}
