package project

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func TestProjectStreaming(t *testing.T) {
	// GST = μx.t→s:ready.s→t:{value.x, stop.end}  (Fig. 3)
	g := types.MustParseGlobal("mu x.t->s:ready.s->t:{value.x, stop.end}")

	source := MustProject(g, "s")
	wantSource := types.MustParse("mu x.t?ready.t!{value.x, stop.end}")
	if !types.EqualLocal(source, wantSource) {
		t.Errorf("source projection = %s, want %s", source, wantSource)
	}

	sink := MustProject(g, "t")
	wantSink := types.MustParse("mu x.s!ready.s?{value.x, stop.end}")
	if !types.EqualLocal(sink, wantSink) {
		t.Errorf("sink projection = %s, want %s", sink, wantSink)
	}
}

func TestProjectDoubleBuffering(t *testing.T) {
	// GDB = μx.k→s:ready.s→k:value.t→k:ready.k→t:value.x  (§2.1)
	g := types.MustParseGlobal("mu x.k->s:ready.s->k:value.t->k:ready.k->t:value.x")

	kernel := MustProject(g, "k")
	wantKernel := types.MustParse("mu x.s!ready.s?value.t?ready.t!value.x")
	if !types.EqualLocal(kernel, wantKernel) {
		t.Errorf("kernel projection = %s, want %s", kernel, wantKernel)
	}

	source := MustProject(g, "s")
	wantSource := types.MustParse("mu x.k?ready.k!value.x")
	if !types.EqualLocal(source, wantSource) {
		t.Errorf("source projection = %s, want %s", source, wantSource)
	}

	sink := MustProject(g, "t")
	wantSink := types.MustParse("mu x.k!ready.k?value.x")
	if !types.EqualLocal(sink, wantSink) {
		t.Errorf("sink projection = %s, want %s", sink, wantSink)
	}
}

func TestProjectNonParticipant(t *testing.T) {
	g := types.MustParseGlobal("mu x.a->b:m.x")
	got := MustProject(g, "c")
	if _, ok := got.(types.End); !ok {
		t.Errorf("non-participant projection = %s, want end", got)
	}
}

func TestProjectMergeIdenticalBranches(t *testing.T) {
	// c does the same thing in both branches: mergeable.
	g := types.MustParseGlobal("a->b:{l.b->c:m.end, r.b->c:m.end}")
	got := MustProject(g, "c")
	want := types.MustParse("b?m.end")
	if !types.EqualLocal(got, want) {
		t.Errorf("projection = %s, want %s", got, want)
	}
}

func TestProjectFullMerge(t *testing.T) {
	// c receives different labels from b depending on the branch: full merge
	// combines them into a single external choice.
	g := types.MustParseGlobal("a->b:{l.b->c:m1.end, r.b->c:m2.end}")
	got := MustProject(g, "c")
	want := types.MustParse("b?{m1.end, m2.end}")
	if !types.EqualLocal(got, want) {
		t.Errorf("projection = %s, want %s", got, want)
	}
}

func TestProjectUnmergeable(t *testing.T) {
	// c must *send* different things depending on a choice it never observes.
	g := types.MustParseGlobal("a->b:{l.c->b:m1.end, r.c->b:m2.end}")
	if _, err := Project(g, "c"); err == nil {
		t.Error("unprojectable protocol accepted")
	}
	// Conflicting sorts under a common label.
	g2 := types.MustParseGlobal("a->b:{l.b->c:m(i32).end, r.b->c:m(i64).end}")
	if _, err := Project(g2, "c"); err == nil {
		t.Error("conflicting sorts accepted")
	}
}

func TestProjectRingWithChoice(t *testing.T) {
	// The ring-with-choice protocol from Appendix B.2.1: roles a, b, c where
	// b's projection is μt.a?add.c!{add.t, sub.t}.
	g := types.MustParseGlobal("mu t.a->b:add.b->c:{add.c->a:add.t, sub.c->a:add.t}")
	got := MustProject(g, "b")
	want := types.MustParse("mu t.a?add.c!{add.t, sub.t}")
	if !types.EqualLocal(got, want) {
		t.Errorf("projection = %s, want %s", got, want)
	}
}

func TestProjectAll(t *testing.T) {
	g := types.MustParseGlobal("mu x.k->s:ready.s->k:value.t->k:ready.k->t:value.x")
	all, err := ProjectAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("ProjectAll returned %d roles", len(all))
	}
	for r, l := range all {
		if err := types.ValidateLocal(l); err != nil {
			t.Errorf("projection onto %s invalid: %v", r, err)
		}
	}
}

func TestProjectFSMs(t *testing.T) {
	g := types.MustParseGlobal("mu x.t->s:ready.s->t:{value.x, stop.end}")
	ms, err := ProjectFSMs(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d machines", len(ms))
	}
	for r, m := range ms {
		if m.Role() != r {
			t.Errorf("machine role %s under key %s", m.Role(), r)
		}
		if !m.Directed() {
			t.Errorf("projected machine for %s not directed", r)
		}
	}
}

func TestProjectRejectsIllFormedGlobal(t *testing.T) {
	bad := types.Comm{From: "p", To: "p", Branches: []types.GBranch{{Label: "l", Sort: types.Unit, Cont: types.GEnd{}}}}
	if _, err := Project(bad, "p"); err == nil {
		t.Error("self-communication accepted")
	}
}

func TestMergeErrorMentionsRole(t *testing.T) {
	g := types.MustParseGlobal("a->b:{l.c->b:m1.end, r.c->b:m2.end}")
	_, err := Project(g, "c")
	if err == nil || !strings.Contains(err.Error(), "merge") {
		t.Errorf("error %v does not mention merging", err)
	}
}
