package project_test

import (
	"fmt"

	"repro/internal/project"
	"repro/internal/types"
)

// ExampleProject projects the double-buffering global type of Listing 1 onto
// its three participants.
func ExampleProject() {
	g := types.MustParseGlobal("mu x.k->s:ready.s->k:value.t->k:ready.k->t:value.x")
	for _, role := range types.Roles(g) {
		local, err := project.Project(g, role)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %s\n", role, local)
	}
	// Output:
	// k: mu x.s!{ready.s?{value.t?{ready.t!{value.x}}}}
	// s: mu x.k?{ready.k!{value.x}}
	// t: mu x.k!{ready.k?{value.x}}
}
