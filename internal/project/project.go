// Package project implements projection of global session types onto
// participants, producing the local types / FSMs that the top-down workflow
// verifies optimisations against (§2.1 of the paper). It plays the role of
// the νScr toolchain in the Rust framework.
//
// Projection follows the classical plain merging discipline of Honda, Yoshida
// and Carbone: for an interaction p → q : {ℓᵢ.Gᵢ},
//
//   - the projection onto p is the internal choice ⊕ᵢ q!ℓᵢ.(Gᵢ ↾ p),
//   - the projection onto q is the external choice &ᵢ p?ℓᵢ.(Gᵢ ↾ q),
//   - the projection onto any other role r requires all branch projections
//     Gᵢ ↾ r to merge. Plain merge requires identical projections; full merge
//     additionally allows distinct external choices from the same peer to be
//     combined branch-wise.
package project

import (
	"fmt"

	"repro/internal/fsm"
	"repro/internal/types"
)

// Project computes G ↾ role using full merging. It fails when the global type
// is ill-formed or unprojectable.
func Project(g types.Global, role types.Role) (types.Local, error) {
	if err := types.ValidateGlobal(g); err != nil {
		return nil, err
	}
	t, err := project(g, role)
	if err != nil {
		return nil, err
	}
	return pruneUnusedRecs(t), nil
}

// MustProject is Project but panics on error.
func MustProject(g types.Global, role types.Role) types.Local {
	t, err := Project(g, role)
	if err != nil {
		panic(err)
	}
	return t
}

// ProjectAll projects onto every participant of g.
func ProjectAll(g types.Global) (map[types.Role]types.Local, error) {
	out := map[types.Role]types.Local{}
	for _, r := range types.Roles(g) {
		t, err := Project(g, r)
		if err != nil {
			return nil, fmt.Errorf("project: projection onto %s: %w", r, err)
		}
		out[r] = t
	}
	return out, nil
}

// ProjectFSMs projects onto every participant and converts the results to
// machines, the representation the verification algorithms consume.
func ProjectFSMs(g types.Global) (map[types.Role]*fsm.FSM, error) {
	locals, err := ProjectAll(g)
	if err != nil {
		return nil, err
	}
	out := map[types.Role]*fsm.FSM{}
	for r, t := range locals {
		m, err := fsm.FromLocal(r, t)
		if err != nil {
			return nil, fmt.Errorf("project: FSM for %s: %w", r, err)
		}
		out[r] = m
	}
	return out, nil
}

func project(g types.Global, role types.Role) (types.Local, error) {
	switch g := g.(type) {
	case types.GEnd:
		return types.End{}, nil
	case types.GVar:
		return types.Var{Name: g.Name}, nil
	case types.GRec:
		// Classical rule: (μt.G) ↾ r is end when r does not participate in G,
		// and μt.(G ↾ r) otherwise.
		if !participates(g.Body, role) {
			return types.End{}, nil
		}
		body, err := project(g.Body, role)
		if err != nil {
			return nil, err
		}
		return types.Rec{Name: g.Name, Body: body}, nil
	case types.Comm:
		switch role {
		case g.From:
			branches, err := projectBranches(g.Branches, role)
			if err != nil {
				return nil, err
			}
			return types.Send{Peer: g.To, Branches: branches}, nil
		case g.To:
			branches, err := projectBranches(g.Branches, role)
			if err != nil {
				return nil, err
			}
			return types.Recv{Peer: g.From, Branches: branches}, nil
		default:
			projs := make([]types.Local, len(g.Branches))
			for i, b := range g.Branches {
				p, err := project(b.Cont, role)
				if err != nil {
					return nil, err
				}
				projs[i] = p
			}
			merged := projs[0]
			for i := 1; i < len(projs); i++ {
				m, err := merge(merged, projs[i])
				if err != nil {
					return nil, fmt.Errorf("cannot merge projections of %s->%s onto %s: %w", g.From, g.To, role, err)
				}
				merged = m
			}
			return merged, nil
		}
	default:
		return nil, fmt.Errorf("project: unknown global type %T", g)
	}
}

func projectBranches(branches []types.GBranch, role types.Role) ([]types.Branch, error) {
	out := make([]types.Branch, len(branches))
	for i, b := range branches {
		cont, err := project(b.Cont, role)
		if err != nil {
			return nil, err
		}
		out[i] = types.Branch{Label: b.Label, Sort: b.Sort, Cont: cont}
	}
	return out, nil
}

// merge implements full merging: identical types merge to themselves, and two
// external choices from the same peer merge branch-wise (common labels must
// have mergeable continuations; distinct labels are unioned).
func merge(a, b types.Local) (types.Local, error) {
	if types.EqualLocal(a, b) {
		return a, nil
	}
	ra, okA := a.(types.Recv)
	rb, okB := b.(types.Recv)
	if okA && okB && ra.Peer == rb.Peer {
		byLabel := map[types.Label]types.Branch{}
		var order []types.Label
		for _, br := range ra.Branches {
			byLabel[br.Label] = br
			order = append(order, br.Label)
		}
		for _, br := range rb.Branches {
			if existing, ok := byLabel[br.Label]; ok {
				if existing.Sort != br.Sort {
					return nil, fmt.Errorf("label %s has conflicting sorts %s and %s", br.Label, existing.Sort, br.Sort)
				}
				m, err := merge(existing.Cont, br.Cont)
				if err != nil {
					return nil, err
				}
				byLabel[br.Label] = types.Branch{Label: br.Label, Sort: br.Sort, Cont: m}
			} else {
				byLabel[br.Label] = br
				order = append(order, br.Label)
			}
		}
		out := make([]types.Branch, len(order))
		for i, l := range order {
			out[i] = byLabel[l]
		}
		return types.Recv{Peer: ra.Peer, Branches: out}, nil
	}
	// Recursion binders merge when bodies merge under the same name.
	ka, okA2 := a.(types.Rec)
	kb, okB2 := b.(types.Rec)
	if okA2 && okB2 && ka.Name == kb.Name {
		body, err := merge(ka.Body, kb.Body)
		if err != nil {
			return nil, err
		}
		return types.Rec{Name: ka.Name, Body: body}, nil
	}
	return nil, fmt.Errorf("unmergeable projections %s and %s", a, b)
}

// pruneUnusedRecs removes μ-binders whose variable never occurs, which
// projection introduces when a role does not participate in a loop. Without
// pruning, a projection such as μx.end would be reported non-contractive by
// downstream validation... it is in fact simply end.
func pruneUnusedRecs(t types.Local) types.Local {
	switch t := t.(type) {
	case types.End, types.Var:
		return t
	case types.Rec:
		body := pruneUnusedRecs(t.Body)
		if !occursFree(body, t.Name) {
			return body
		}
		return types.Rec{Name: t.Name, Body: body}
	case types.Send:
		return types.Send{Peer: t.Peer, Branches: pruneBranches(t.Branches)}
	case types.Recv:
		return types.Recv{Peer: t.Peer, Branches: pruneBranches(t.Branches)}
	default:
		panic(fmt.Sprintf("project: unknown local type %T", t))
	}
}

func pruneBranches(bs []types.Branch) []types.Branch {
	out := make([]types.Branch, len(bs))
	for i, b := range bs {
		out[i] = types.Branch{Label: b.Label, Sort: b.Sort, Cont: pruneUnusedRecs(b.Cont)}
	}
	return out
}

// participates reports whether role sends or receives anywhere in g.
func participates(g types.Global, role types.Role) bool {
	switch g := g.(type) {
	case types.Comm:
		if g.From == role || g.To == role {
			return true
		}
		for _, b := range g.Branches {
			if participates(b.Cont, role) {
				return true
			}
		}
	case types.GRec:
		return participates(g.Body, role)
	}
	return false
}

func occursFree(t types.Local, name string) bool {
	for _, v := range types.FreeVars(t) {
		if v == name {
			return true
		}
	}
	return false
}
