package project

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fsm"
	"repro/internal/kmc"
	"repro/internal/sim"
	"repro/internal/types"
)

// genGlobal generates a random well-formed, projectable global type over
// three roles: sequences of interactions, an optional top-level loop, and
// choices whose branches share a continuation (the plainly-mergeable class).
func genGlobal(r *rand.Rand, depth int, loop bool) types.Global {
	roles := []types.Role{"a", "b", "c"}
	labels := []types.Label{"l", "m", "n"}
	var gen func(depth int) types.Global
	gen = func(depth int) types.Global {
		if depth <= 0 {
			if loop && r.Intn(2) == 0 {
				return types.GVar{Name: "t"}
			}
			return types.GEnd{}
		}
		from := roles[r.Intn(len(roles))]
		to := roles[(int(from[0])-'a'+1+r.Intn(2))%3]
		if from == to {
			to = roles[(int(to[0])-'a'+1)%3]
		}
		cont := gen(depth - 1)
		if r.Intn(4) == 0 {
			// A two-branch choice with a shared continuation.
			return types.Comm{From: from, To: to, Branches: []types.GBranch{
				{Label: labels[0], Sort: types.Unit, Cont: cont},
				{Label: labels[1], Sort: types.Unit, Cont: cont},
			}}
		}
		return types.GComm(from, to, labels[r.Intn(len(labels))], types.Unit, cont)
	}
	body := gen(depth)
	if loop {
		// Guard the loop: at least one interaction before any variable. The
		// generator above may produce a bare variable at depth 0, so wrap
		// only when the body is guarded.
		g := types.GRec{Name: "t", Body: body}
		if err := types.ValidateGlobal(g); err == nil {
			return g
		}
		return types.GComm("a", "b", "seed", types.Unit, types.GEnd{})
	}
	return body
}

type globalGen struct {
	G types.Global
}

func (globalGen) Generate(r *rand.Rand, size int) reflect.Value {
	d := size%5 + 1
	return reflect.ValueOf(globalGen{G: genGlobal(r, d, r.Intn(2) == 0)})
}

// TestQuickProjectionsAreCompatible is the communication-safety theorem of
// MPST, checked empirically: the projections of any well-formed global type
// form a 1-multiparty-compatible system.
func TestQuickProjectionsAreCompatible(t *testing.T) {
	f := func(g globalGen) bool {
		if err := types.ValidateGlobal(g.G); err != nil {
			t.Logf("generator produced ill-formed global %s: %v", g.G, err)
			return false
		}
		ms, err := ProjectFSMs(g.G)
		if err != nil {
			t.Logf("projection failed for %s: %v", g.G, err)
			return false
		}
		if len(ms) < 2 {
			return true // degenerate: fewer than two participants
		}
		var machines []*fsm.FSM
		for _, m := range ms {
			machines = append(machines, m)
		}
		sys, err := kmc.NewSystem(machines...)
		if err != nil {
			return false
		}
		res := kmc.Check(sys, 1)
		if !res.OK {
			t.Logf("projections of %s not 1-MC: %v", g.G, res.Violation)
		}
		return res.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickProjectionsExecute runs the projected systems under random
// schedules: they must never get stuck.
func TestQuickProjectionsExecute(t *testing.T) {
	f := func(g globalGen, seed int64) bool {
		ms, err := ProjectFSMs(g.G)
		if err != nil || len(ms) < 2 {
			return err == nil
		}
		var machines []*fsm.FSM
		for _, m := range ms {
			machines = append(machines, m)
		}
		if _, err := sim.Run(machines, 500, seed); err != nil {
			t.Logf("execution of %s stuck: %v", g.G, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
