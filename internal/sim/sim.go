// Package sim executes a system of communicating machines under the paper's
// asynchronous semantics — unbounded FIFO queues per ordered pair of roles —
// following one (seeded) random interleaving. It is the execution-level
// counterpart of the kmc package's exhaustive exploration: tests use it to
// run every protocol in the registry end to end, checking that verified
// systems never get stuck and never mis-deliver, for many schedules.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/fsm"
	"repro/internal/types"
)

// Result summarises one simulated execution.
type Result struct {
	// Steps actually executed (≤ the requested budget).
	Steps int
	// Terminated reports that every machine reached a final state with all
	// queues empty; infinite protocols exhaust the budget instead.
	Terminated bool
	// MaxQueue is the high-water mark across all queues — how far ahead the
	// AMR optimisations actually run.
	MaxQueue int
}

// Stuck is returned when no machine can move but the system has not properly
// terminated: the execution-level witness of a deadlock or orphan message.
type Stuck struct {
	Detail string
}

func (s *Stuck) Error() string { return "sim: stuck: " + s.Detail }

// Run simulates at most steps steps of the system, choosing uniformly among
// enabled machine moves with the given seed.
func Run(machines []*fsm.FSM, steps int, seed int64) (Result, error) {
	n := len(machines)
	if n == 0 {
		return Result{}, fmt.Errorf("sim: empty system")
	}
	index := map[types.Role]int{}
	for i, m := range machines {
		if _, dup := index[m.Role()]; dup {
			return Result{}, fmt.Errorf("sim: duplicate role %s", m.Role())
		}
		index[m.Role()] = i
	}

	states := make([]fsm.State, n)
	for i, m := range machines {
		states[i] = m.Initial()
	}
	queues := make([][]types.Label, n*n)
	rng := rand.New(rand.NewSource(seed))

	res := Result{}
	for res.Steps = 0; res.Steps < steps; res.Steps++ {
		type move struct {
			mi int
			tr fsm.Transition
		}
		var enabled []move
		for mi, m := range machines {
			for _, tr := range m.Transitions(states[mi]) {
				peer, ok := index[tr.Act.Peer]
				if !ok {
					return res, fmt.Errorf("sim: machine %s mentions unknown role %s", m.Role(), tr.Act.Peer)
				}
				if tr.Act.Dir == fsm.Send {
					enabled = append(enabled, move{mi, tr}) // unbounded queues
					continue
				}
				q := queues[peer*n+mi]
				if len(q) > 0 && q[0] == tr.Act.Label {
					enabled = append(enabled, move{mi, tr})
				}
			}
		}
		if len(enabled) == 0 {
			done := true
			for mi, m := range machines {
				if !m.IsFinal(states[mi]) {
					done = false
					break
				}
			}
			empty := true
			for _, q := range queues {
				if len(q) > 0 {
					empty = false
					break
				}
			}
			if done && empty {
				res.Terminated = true
				return res, nil
			}
			return res, &Stuck{Detail: describe(machines, states, queues)}
		}
		mv := enabled[rng.Intn(len(enabled))]
		peer := index[mv.tr.Act.Peer]
		if mv.tr.Act.Dir == fsm.Send {
			qi := mv.mi*n + peer
			queues[qi] = append(queues[qi], mv.tr.Act.Label)
			if len(queues[qi]) > res.MaxQueue {
				res.MaxQueue = len(queues[qi])
			}
		} else {
			qi := peer*n + mv.mi
			queues[qi] = queues[qi][1:]
		}
		states[mv.mi] = mv.tr.To
	}
	return res, nil
}

// HighWater runs the system once per seed and returns the largest queue
// high-water mark observed across all runs — the dynamic counterpart of the
// optimiser's static lookahead score (core.Stats.MaxSendAhead). Infinite
// protocols exhaust the step budget rather than terminating; a stuck run is
// an error, as in Run.
func HighWater(machines []*fsm.FSM, steps int, seeds []int64) (int, error) {
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	max := 0
	for _, seed := range seeds {
		res, err := Run(machines, steps, seed)
		if err != nil {
			return max, err
		}
		if res.MaxQueue > max {
			max = res.MaxQueue
		}
	}
	return max, nil
}

func describe(machines []*fsm.FSM, states []fsm.State, queues [][]types.Label) string {
	out := ""
	for mi, m := range machines {
		out += fmt.Sprintf("%s@%d ", m.Role(), states[mi])
	}
	n := len(machines)
	for qi, q := range queues {
		if len(q) > 0 {
			out += fmt.Sprintf("%s->%s:%v ", machines[qi/n].Role(), machines[qi%n].Role(), q)
		}
	}
	return out
}
