package sim

import (
	"errors"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/types"
)

func machines(t *testing.T, kv ...string) []*fsm.FSM {
	t.Helper()
	var out []*fsm.FSM
	for i := 0; i < len(kv); i += 2 {
		out = append(out, fsm.MustFromLocal(types.Role(kv[i]), types.MustParse(kv[i+1])))
	}
	return out
}

func TestTerminatingSystem(t *testing.T) {
	ms := machines(t, "p", "q!req.q?rep.end", "q", "p?req.p!rep.end")
	res, err := Run(ms, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Error("system did not terminate")
	}
	if res.Steps != 4 {
		t.Errorf("took %d steps, want 4", res.Steps)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Example 2's unsafe double reordering.
	ms := machines(t, "p", "q?l2.q!l1.end", "q", "p?l1.p!l2.end")
	_, err := Run(ms, 100, 1)
	var stuck *Stuck
	if !errors.As(err, &stuck) {
		t.Fatalf("err = %v, want Stuck", err)
	}
}

func TestInfiniteProtocolExhaustsBudget(t *testing.T) {
	ms := machines(t, "a", "mu t.b!v.b?v.t", "b", "mu t.a?v.a!v.t")
	res, err := Run(ms, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Error("infinite protocol terminated")
	}
	if res.Steps != 1000 {
		t.Errorf("steps = %d", res.Steps)
	}
}

func TestQueueHighWaterMark(t *testing.T) {
	// A sender that runs n ahead must show up in MaxQueue.
	ms := machines(t, "s", "t!v.t!v.t!v.t!v.end", "t", "s?v.s?v.s?v.s?v.end")
	// Seed chosen arbitrarily; the sender is always enabled, so across seeds
	// the max queue varies but is at least 1.
	res, err := Run(ms, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.MaxQueue < 1 || res.MaxQueue > 4 {
		t.Errorf("res = %+v", res)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil, 10, 1); err == nil {
		t.Error("empty system accepted")
	}
	dup := machines(t, "p", "q!a.end", "p", "q!a.end")
	if _, err := Run(dup, 10, 1); err == nil {
		t.Error("duplicate role accepted")
	}
	ghost := machines(t, "p", "zz!a.end")
	if _, err := Run(ghost, 10, 1); err == nil {
		t.Error("unknown peer accepted")
	}
}

// TestRegistryProtocolsExecute runs every Table 1 system (with optimised
// endpoints applied) under many random schedules: a verified system must
// never get stuck and must either terminate or still be running at budget.
func TestRegistryProtocolsExecute(t *testing.T) {
	for _, e := range protocols.Registry() {
		ms := protocols.Machines(protocols.FSMs(e.System()))
		for seed := int64(0); seed < 20; seed++ {
			res, err := Run(ms, 2000, seed)
			if err != nil {
				t.Errorf("%s (seed %d): %v", e.Name, seed, err)
				break
			}
			if e.InfiniteRec && res.Terminated && e.Name != "Client-Server Log" {
				// Protocols flagged IR with no reachable end must not
				// terminate (those with a quit branch may).
				if !hasFinal(ms) {
					t.Errorf("%s (seed %d): terminated but has no final states", e.Name, seed)
				}
			}
		}
	}
}

// TestRegistryUnoptimisedProtocolsExecute runs the plain projections too.
func TestRegistryUnoptimisedProtocolsExecute(t *testing.T) {
	for _, e := range protocols.Registry() {
		ms := protocols.Machines(protocols.FSMs(e.Locals))
		for seed := int64(0); seed < 10; seed++ {
			if _, err := Run(ms, 2000, seed); err != nil {
				t.Errorf("%s (seed %d): %v", e.Name, seed, err)
				break
			}
		}
	}
}

// TestUnrolledFamiliesExecute exercises the Fig. 7 families at execution
// level: the AMR systems run without sticking and actually use the queues
// (MaxQueue grows with the unroll depth).
func TestUnrolledFamiliesExecute(t *testing.T) {
	for _, n := range []int{1, 5, 10} {
		res, err := Run(protocols.StreamingUnrolledSystem(n), 4000, 42)
		if err != nil {
			t.Fatalf("streaming %d: %v", n, err)
		}
		if res.MaxQueue < 1 {
			t.Errorf("streaming %d: queues unused", n)
		}
		if _, err := Run(protocols.KBufferingSystem(n), 4000, 42); err != nil {
			t.Fatalf("k-buffering %d: %v", n, err)
		}
	}
	for _, n := range []int{2, 5, 9} {
		if _, err := Run(protocols.RingNSystem(n), 4000, 42); err != nil {
			t.Fatalf("ring %d: %v", n, err)
		}
	}
}

func hasFinal(ms []*fsm.FSM) bool {
	for _, m := range ms {
		for s := 0; s < m.NumStates(); s++ {
			if m.IsFinal(fsm.State(s)) {
				return true
			}
		}
	}
	return false
}

func TestHighWater(t *testing.T) {
	// The 2-unrolled streaming source holds up to 3 values in flight; the
	// plain one at most 1. HighWater reports the max across seeds.
	plain := machines(t,
		"s", "mu x.t?ready.t!value.x",
		"t", "mu x.s!ready.s?value.x")
	unrolled := machines(t,
		"s", "t!value.t!value.mu x.t?ready.t!value.x",
		"t", "mu x.s!ready.s?value.x")
	seeds := []int64{1, 2, 3}
	before, err := HighWater(plain, 2000, seeds)
	if err != nil {
		t.Fatal(err)
	}
	after, err := HighWater(unrolled, 2000, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("unrolled high-water %d not above plain %d", after, before)
	}
	// Defaults to one seed when none given.
	if _, err := HighWater(plain, 100, nil); err != nil {
		t.Error(err)
	}
	// A stuck system surfaces its error.
	stuck := machines(t, "a", "b?go.end", "b", "a?go.end")
	if _, err := HighWater(stuck, 100, seeds); err == nil {
		t.Error("stuck system reported no error")
	}
}
