package fsm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Marshal renders the machine in a line-oriented text format, the analogue of
// the CFSM files exchanged between Rumpsteak's serialiser and the k-MC tool
// (§2.2). The format is stable and diff-friendly:
//
//	fsm <role>
//	initial <state>
//	<from> <peer> ! <label> <sort> <to>
//	<from> <peer> ? <label> <sort> <to>
//
// Transitions are sorted for determinism. Unmarshal parses it back.
func Marshal(m *FSM) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsm %s\n", m.role)
	fmt.Fprintf(&b, "initial %d\n", m.initial)
	var lines []string
	for s, ts := range m.next {
		for _, t := range ts {
			lines = append(lines, fmt.Sprintf("%d %s %s %s %s %d", s, t.Act.Peer, t.Act.Dir, t.Act.Label, t.Act.Sort, t.To))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	// States with no transitions still need to exist after a round trip:
	// record the state count.
	fmt.Fprintf(&b, "states %d\n", len(m.next))
	return b.String()
}

// Unmarshal parses the Marshal format.
func Unmarshal(src string) (*FSM, error) {
	var role types.Role
	initial := State(0)
	stateCount := -1
	type edge struct {
		from State
		act  Action
		to   State
	}
	var edges []edge
	maxState := State(0)

	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "fsm":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fsm: line %d: want 'fsm <role>'", ln+1)
			}
			role = types.Role(fields[1])
		case "initial":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fsm: line %d: want 'initial <state>'", ln+1)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("fsm: line %d: %v", ln+1, err)
			}
			initial = State(v)
		case "states":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fsm: line %d: want 'states <count>'", ln+1)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("fsm: line %d: %v", ln+1, err)
			}
			stateCount = v
		default:
			if len(fields) != 6 {
				return nil, fmt.Errorf("fsm: line %d: want '<from> <peer> <!|?> <label> <sort> <to>'", ln+1)
			}
			from, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("fsm: line %d: %v", ln+1, err)
			}
			var dir Dir
			switch fields[2] {
			case "!":
				dir = Send
			case "?":
				dir = Recv
			default:
				return nil, fmt.Errorf("fsm: line %d: bad direction %q", ln+1, fields[2])
			}
			to, err := strconv.Atoi(fields[5])
			if err != nil {
				return nil, fmt.Errorf("fsm: line %d: %v", ln+1, err)
			}
			e := edge{
				from: State(from),
				act:  Action{Dir: dir, Peer: types.Role(fields[1]), Label: types.Label(fields[3]), Sort: types.Sort(fields[4])},
				to:   State(to),
			}
			edges = append(edges, e)
			if e.from > maxState {
				maxState = e.from
			}
			if e.to > maxState {
				maxState = e.to
			}
		}
	}
	if role == "" {
		return nil, fmt.Errorf("fsm: missing 'fsm <role>' header")
	}
	n := int(maxState) + 1
	if stateCount > n {
		n = stateCount
	}
	if int(initial) >= n {
		n = int(initial) + 1
	}
	m := &FSM{role: role, initial: initial, next: make([][]Transition, n)}
	for _, e := range edges {
		if err := m.AddTransition(e.from, e.act, e.to); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
