package fsm

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func TestMarshalRoundTrip(t *testing.T) {
	sources := []string{
		"end",
		"mu x.s!ready.s?copy.t?ready.t!copy.x",
		"t?ready.t!{value(i32).end, stop.end}",
		"mu t.s?{d0.s!a0.t, d1.s!a1.t}",
	}
	for _, src := range sources {
		m := MustFromLocal("r", types.MustParse(src))
		text := Marshal(m)
		back, err := Unmarshal(text)
		if err != nil {
			t.Fatalf("Unmarshal(%q): %v\n%s", src, err, text)
		}
		if back.Role() != "r" {
			t.Errorf("role = %s", back.Role())
		}
		if !bisimilar(m, back) {
			t.Errorf("round trip changed behaviour for %q:\n%s", src, text)
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := MustFromLocal("r", types.MustParse("t!{b.end, a.end, c.end}"))
	if Marshal(m) != Marshal(m) {
		t.Error("Marshal not deterministic")
	}
}

func TestUnmarshalExplicit(t *testing.T) {
	src := `
fsm k
initial 0
# the double-buffering kernel loop
0 s ! ready unit 1
1 s ? value unit 2
2 t ? ready unit 3
3 t ! value unit 0
states 4
`
	m, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Role() != "k" || m.NumStates() != 4 {
		t.Fatalf("role=%s states=%d", m.Role(), m.NumStates())
	}
	ts := m.Transitions(0)
	if len(ts) != 1 || ts[0].Act.String() != "s!ready" {
		t.Errorf("transitions(0) = %v", ts)
	}
}

func TestUnmarshalFinalOnlyStates(t *testing.T) {
	// A machine whose final state has no transitions must keep that state.
	src := "fsm p\ninitial 0\n0 q ! l unit 1\nstates 2\n"
	m, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 || !m.IsFinal(1) {
		t.Errorf("states=%d", m.NumStates())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := map[string]string{
		"no header":     "initial 0\n0 q ! l unit 1\n",
		"bad dir":       "fsm p\ninitial 0\n0 q > l unit 1\n",
		"bad from":      "fsm p\ninitial 0\nx q ! l unit 1\n",
		"bad to":        "fsm p\ninitial 0\n0 q ! l unit y\n",
		"short line":    "fsm p\ninitial 0\n0 q !\n",
		"bad initial":   "fsm p\ninitial zz\n",
		"bad states":    "fsm p\ninitial 0\nstates zz\n",
		"self peer":     "fsm p\ninitial 0\n0 p ! l unit 1\n",
		"dup action":    "fsm p\ninitial 0\n0 q ! l unit 1\n0 q ! l unit 0\n",
		"extra fsm arg": "fsm p extra\n",
	}
	for name, src := range bad {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarshalContainsHeader(t *testing.T) {
	m := MustFromLocal("k", types.MustParse("s!ready.end"))
	text := Marshal(m)
	for _, frag := range []string{"fsm k", "initial 0", "states"} {
		if !strings.Contains(text, frag) {
			t.Errorf("Marshal output missing %q:\n%s", frag, text)
		}
	}
}
