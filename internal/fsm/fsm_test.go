package fsm

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func TestActionString(t *testing.T) {
	a := Action{Dir: Send, Peer: "s", Label: "ready", Sort: types.Unit}
	if a.String() != "s!ready" {
		t.Errorf("Action.String() = %q", a.String())
	}
	b := Action{Dir: Recv, Peer: "t", Label: "value", Sort: types.I32}
	if b.String() != "t?value(i32)" {
		t.Errorf("Action.String() = %q", b.String())
	}
}

func TestActionDual(t *testing.T) {
	a := Action{Dir: Send, Peer: "q", Label: "l", Sort: types.I32}
	d := a.Dual("p")
	if d.Dir != Recv || d.Peer != "p" || d.Label != "l" || d.Sort != types.I32 {
		t.Errorf("Dual = %+v", d)
	}
	if dd := d.Dual("q"); dd != a {
		t.Errorf("double dual = %+v, want %+v", dd, a)
	}
}

func TestNewMachine(t *testing.T) {
	m := New("k")
	if m.Role() != "k" {
		t.Errorf("Role = %s", m.Role())
	}
	if m.NumStates() != 1 {
		t.Errorf("NumStates = %d", m.NumStates())
	}
	if !m.IsFinal(m.Initial()) {
		t.Error("fresh initial state should be final")
	}
}

func TestAddTransitionRejectsDuplicates(t *testing.T) {
	m := New("k")
	s2 := m.AddState()
	act := Action{Dir: Send, Peer: "s", Label: "ready", Sort: types.Unit}
	if err := m.AddTransition(m.Initial(), act, s2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransition(m.Initial(), act, m.Initial()); err == nil {
		t.Error("duplicate action accepted")
	}
	// Same label to a different peer is fine.
	other := Action{Dir: Send, Peer: "t", Label: "ready", Sort: types.Unit}
	if err := m.AddTransition(m.Initial(), other, s2); err != nil {
		t.Errorf("distinct peer rejected: %v", err)
	}
}

func TestFromLocalKernel(t *testing.T) {
	// The double-buffering kernel: mu x. s!ready. s?copy. t?ready. t!copy. x
	typ := types.MustParse("mu x.s!ready.s?copy.t?ready.t!copy.x")
	m, err := FromLocal("k", typ)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the loop: 4 actions then back to start behaviour.
	s := m.Initial()
	want := []string{"s!ready", "s?copy", "t?ready", "t!copy"}
	for i, w := range want {
		ts := m.Transitions(s)
		if len(ts) != 1 {
			t.Fatalf("step %d: %d transitions", i, len(ts))
		}
		if ts[0].Act.String() != w {
			t.Fatalf("step %d: action %s, want %s", i, ts[0].Act, w)
		}
		s = ts[0].To
	}
	// After one full loop we must be at a state with the same behaviour as the
	// initial state.
	ts := m.Transitions(s)
	if len(ts) != 1 || ts[0].Act.String() != "s!ready" {
		t.Errorf("loop does not close: %v", ts)
	}
}

func TestFromLocalChoice(t *testing.T) {
	typ := types.MustParse("t?ready.t!{value(i32).end, stop.end}")
	m, err := FromLocal("s", typ)
	if err != nil {
		t.Fatal(err)
	}
	ts := m.Transitions(m.Initial())
	if len(ts) != 1 || ts[0].Act.String() != "t?ready" {
		t.Fatalf("initial transitions %v", ts)
	}
	ts = m.Transitions(ts[0].To)
	if len(ts) != 2 {
		t.Fatalf("choice has %d branches", len(ts))
	}
	for _, tr := range ts {
		if !m.IsFinal(tr.To) {
			t.Errorf("branch %s does not terminate", tr.Act)
		}
	}
}

func TestFromLocalRejectsIllFormed(t *testing.T) {
	if _, err := FromLocal("p", types.Var{Name: "x"}); err == nil {
		t.Error("unbound variable accepted")
	}
	if _, err := FromLocal("p", types.Rec{Name: "x", Body: types.Var{Name: "x"}}); err == nil {
		t.Error("non-contractive type accepted")
	}
	// Self-directed action.
	if _, err := FromLocal("p", types.MustParse("p!l.end")); err == nil {
		t.Error("self-directed action accepted")
	}
}

func TestDirected(t *testing.T) {
	m := MustFromLocal("s", types.MustParse("t?ready.t!{value.end, stop.end}"))
	if !m.Directed() {
		t.Error("local-type machine should be directed")
	}
	// Build a mixed state by hand.
	mixed := New("p")
	s2 := mixed.AddState()
	mixed.MustAddTransition(mixed.Initial(), Action{Dir: Send, Peer: "q", Label: "a", Sort: types.Unit}, s2)
	mixed.MustAddTransition(mixed.Initial(), Action{Dir: Recv, Peer: "q", Label: "b", Sort: types.Unit}, s2)
	if mixed.Directed() {
		t.Error("mixed state reported directed")
	}
}

func TestReachable(t *testing.T) {
	m := New("p")
	s2 := m.AddState()
	unreachable := m.AddState()
	m.MustAddTransition(m.Initial(), Action{Dir: Send, Peer: "q", Label: "a", Sort: types.Unit}, s2)
	r := m.Reachable()
	if !r[m.Initial()] || !r[s2] {
		t.Error("reachable states missing")
	}
	if r[unreachable] {
		t.Error("unreachable state reported reachable")
	}
}

func TestDot(t *testing.T) {
	m := MustFromLocal("s", types.MustParse("t!{value.end, stop.end}"))
	dot := m.Dot()
	for _, want := range []string{"digraph", "t!value", "t!stop", "doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestToLocalRoundTrip(t *testing.T) {
	sources := []string{
		"end",
		"mu x0.s!{ready.x0}",
		"mu x0.s!{ready.s?{copy.t?{ready.t!{copy.x0}}}}",
		"t?{ready.t!{value.end, stop.end}}",
		"mu x0.s?{d0.s!{a0.x0}, d1.s!{a1.x0}}",
	}
	for _, src := range sources {
		typ := types.MustParse(src)
		m := MustFromLocal("r", typ)
		back, err := ToLocal(m)
		if err != nil {
			t.Fatalf("ToLocal(%q): %v", src, err)
		}
		// Round trip through FromLocal again: the two machines must be
		// behaviourally identical on a joint walk (structural string match is
		// too strict because binder names may differ).
		m2 := MustFromLocal("r", back)
		if !bisimilar(m, m2) {
			t.Errorf("round trip changed behaviour: %q -> %q", src, back)
		}
	}
}

func TestToLocalRejectsMixed(t *testing.T) {
	mixed := New("p")
	s2 := mixed.AddState()
	mixed.MustAddTransition(mixed.Initial(), Action{Dir: Send, Peer: "q", Label: "a", Sort: types.Unit}, s2)
	mixed.MustAddTransition(mixed.Initial(), Action{Dir: Recv, Peer: "q", Label: "b", Sort: types.Unit}, s2)
	if _, err := ToLocal(mixed); err == nil {
		t.Error("mixed machine converted to local type")
	}
}

// bisimilar checks behavioural equality of two deterministic machines by a
// joint walk over action-matched transitions.
func bisimilar(a, b *FSM) bool {
	type pair struct{ x, y State }
	seen := map[pair]bool{}
	var walk func(x, y State) bool
	walk = func(x, y State) bool {
		p := pair{x, y}
		if seen[p] {
			return true
		}
		seen[p] = true
		ta, tb := a.Transitions(x), b.Transitions(y)
		if len(ta) != len(tb) {
			return false
		}
		for _, t1 := range ta {
			found := false
			for _, t2 := range tb {
				if t1.Act == t2.Act {
					if !walk(t1.To, t2.To) {
						return false
					}
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	return walk(a.Initial(), b.Initial())
}

func TestValidate(t *testing.T) {
	m := New("p")
	m.next[0] = append(m.next[0], Transition{Act: Action{Dir: Send, Peer: "q", Label: "l"}, To: 99})
	if err := m.Validate(); err == nil {
		t.Error("dangling transition accepted")
	}
}

func TestSetInitial(t *testing.T) {
	m := New("p")
	s2 := m.AddState()
	m.SetInitial(s2)
	if m.Initial() != s2 {
		t.Error("SetInitial did not take effect")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetInitial out of range did not panic")
		}
	}()
	m.SetInitial(State(42))
}
