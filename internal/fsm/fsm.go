// Package fsm implements communicating finite state machines: the local-type
// representation that Rumpsteak's algorithms operate on (§2 of the paper).
//
// A machine describes one participant. Transitions are labelled with actions
// p!ℓ(S) (send label ℓ with payload sort S to participant p) or p?ℓ(S)
// (receive). Machines obtained from local session types are *directed*: all
// transitions leaving a state share one direction and one peer. The k-MC
// checker additionally accepts general machines where states may mix actions.
package fsm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// Dir is the direction of an action.
type Dir int

const (
	// Send is an output action p!ℓ.
	Send Dir = iota
	// Recv is an input action p?ℓ.
	Recv
)

func (d Dir) String() string {
	if d == Send {
		return "!"
	}
	return "?"
}

// Action is a single communication: direction, peer, label and payload sort.
type Action struct {
	Dir   Dir
	Peer  types.Role
	Label types.Label
	Sort  types.Sort
}

func (a Action) String() string {
	if a.Sort == types.Unit || a.Sort == "" {
		return fmt.Sprintf("%s%s%s", a.Peer, a.Dir, a.Label)
	}
	return fmt.Sprintf("%s%s%s(%s)", a.Peer, a.Dir, a.Label, a.Sort)
}

// Dual returns the matching action from the peer's perspective, relative to
// the given self role: if a = p!ℓ performed by r, Dual(r) = r?ℓ performed by p.
func (a Action) Dual(self types.Role) Action {
	d := Send
	if a.Dir == Send {
		d = Recv
	}
	return Action{Dir: d, Peer: self, Label: a.Label, Sort: a.Sort}
}

// State identifies a state within a machine.
type State int

// Transition is one outgoing edge of a state.
type Transition struct {
	Act Action
	To  State
}

// FSM is a finite state machine for a single role. The zero value is not
// usable; construct with New.
type FSM struct {
	role    types.Role
	initial State
	next    [][]Transition
}

// New returns an empty machine for the given role containing a single initial
// state.
func New(role types.Role) *FSM {
	m := &FSM{role: role}
	m.initial = m.AddState()
	return m
}

// Role returns the participant this machine belongs to.
func (m *FSM) Role() types.Role { return m.role }

// Initial returns the initial state.
func (m *FSM) Initial() State { return m.initial }

// SetInitial changes the initial state.
func (m *FSM) SetInitial(s State) {
	m.mustHave(s)
	m.initial = s
}

// NumStates returns the number of states.
func (m *FSM) NumStates() int { return len(m.next) }

// AddState creates a new state and returns its identifier.
func (m *FSM) AddState() State {
	m.next = append(m.next, nil)
	return State(len(m.next) - 1)
}

// AddTransition adds an edge from → to labelled act. Duplicate actions from
// the same state are rejected to keep machines deterministic.
func (m *FSM) AddTransition(from State, act Action, to State) error {
	m.mustHave(from)
	m.mustHave(to)
	for _, t := range m.next[from] {
		if t.Act.Dir == act.Dir && t.Act.Peer == act.Peer && t.Act.Label == act.Label {
			return fmt.Errorf("fsm: duplicate action %s from state %d", act, from)
		}
	}
	m.next[from] = append(m.next[from], Transition{Act: act, To: to})
	return nil
}

// MustAddTransition is AddTransition but panics on error; for protocol tables
// built from literals.
func (m *FSM) MustAddTransition(from State, act Action, to State) {
	if err := m.AddTransition(from, act, to); err != nil {
		panic(err)
	}
}

// Transitions returns the outgoing edges of s. The returned slice must not be
// modified.
func (m *FSM) Transitions(s State) []Transition {
	m.mustHave(s)
	return m.next[s]
}

// IsFinal reports whether s has no outgoing transitions.
func (m *FSM) IsFinal(s State) bool { return len(m.Transitions(s)) == 0 }

func (m *FSM) mustHave(s State) {
	if s < 0 || int(s) >= len(m.next) {
		panic(fmt.Sprintf("fsm: state %d out of range (machine has %d states)", s, len(m.next)))
	}
}

// Directed reports whether every state's outgoing transitions share a single
// direction and peer — the shape of machines derived from local session types
// (Definition 1). The k-MC checker accepts non-directed machines; the
// subtyping algorithm requires directed ones.
func (m *FSM) Directed() bool {
	for s := range m.next {
		ts := m.next[s]
		for i := 1; i < len(ts); i++ {
			if ts[i].Act.Dir != ts[0].Act.Dir || ts[i].Act.Peer != ts[0].Act.Peer {
				return false
			}
		}
	}
	return true
}

// Validate checks structural sanity: every transition targets an existing
// state and no action mentions the machine's own role as peer.
func (m *FSM) Validate() error {
	for s, ts := range m.next {
		for _, t := range ts {
			if t.To < 0 || int(t.To) >= len(m.next) {
				return fmt.Errorf("fsm: state %d has transition to missing state %d", s, t.To)
			}
			if t.Act.Peer == m.role {
				return fmt.Errorf("fsm: state %d has self-directed action %s", s, t.Act)
			}
		}
	}
	return nil
}

// Reachable returns the set of states reachable from the initial state.
func (m *FSM) Reachable() map[State]bool {
	seen := map[State]bool{m.initial: true}
	stack := []State{m.initial}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.next[s] {
			if !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return seen
}

// Dot renders the machine in Graphviz DOT format, with the initial state
// marked by an incoming arrow.
func (m *FSM) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", string(m.role))
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n  __start [shape=point];\n")
	fmt.Fprintf(&b, "  __start -> %d;\n", m.initial)
	for s, ts := range m.next {
		if len(ts) == 0 {
			fmt.Fprintf(&b, "  %d [shape=doublecircle];\n", s)
		}
		for _, t := range ts {
			fmt.Fprintf(&b, "  %d -> %d [label=%q];\n", s, t.To, t.Act.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders a compact single-line description, mainly for tests and
// error messages.
func (m *FSM) String() string {
	var parts []string
	for s, ts := range m.next {
		for _, t := range ts {
			parts = append(parts, fmt.Sprintf("%d-%s->%d", s, t.Act, t.To))
		}
	}
	sort.Strings(parts)
	return fmt.Sprintf("fsm(%s init=%d: %s)", m.role, m.initial, strings.Join(parts, " "))
}

// FromLocal converts a well-formed local session type into a machine. This is
// the "serialisation" step of the bottom-up workflow (§2.2): in the Rust
// framework the API type is serialised to an FSM; here the local type plays
// the role of the API.
func FromLocal(role types.Role, t types.Local) (*FSM, error) {
	if err := types.ValidateLocal(t); err != nil {
		return nil, err
	}
	m := &FSM{role: role}
	env := map[string]State{}
	memo := map[string]State{}
	s, err := build(m, t, env, memo)
	if err != nil {
		return nil, err
	}
	m.initial = s
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustFromLocal is FromLocal but panics on error.
func MustFromLocal(role types.Role, t types.Local) *FSM {
	m, err := FromLocal(role, t)
	if err != nil {
		panic(err)
	}
	return m
}

// build assigns a state to the subterm t. env maps recursion variables in
// scope to their states; memo shares states between structurally identical
// closed subterms printed under the current env, which keeps machines small
// when unrolled types repeat.
func build(m *FSM, t types.Local, env map[string]State, memo map[string]State) (State, error) {
	switch t := t.(type) {
	case types.End:
		key := "end"
		if s, ok := memo[key]; ok {
			return s, nil
		}
		s := m.AddState()
		memo[key] = s
		return s, nil
	case types.Var:
		s, ok := env[t.Name]
		if !ok {
			return 0, fmt.Errorf("fsm: unbound variable %q", t.Name)
		}
		return s, nil
	case types.Rec:
		// Pre-allocate the state so the body's occurrences of the variable
		// loop back to it.
		s := m.AddState()
		inner := copyEnv(env)
		inner[t.Name] = s
		body, err := build(m, t.Body, inner, memo)
		if err != nil {
			return 0, err
		}
		// The μ node itself performs no action: alias it to the body by
		// copying the body's transitions. (The body state is freshly built
		// and distinct unless the body is a bare variable, which
		// contractivity rules out.)
		m.next[s] = append([]Transition(nil), m.next[body]...)
		return s, nil
	case types.Send:
		return buildChoice(m, Send, t.Peer, t.Branches, env, memo)
	case types.Recv:
		return buildChoice(m, Recv, t.Peer, t.Branches, env, memo)
	default:
		return 0, fmt.Errorf("fsm: unknown local type %T", t)
	}
}

func buildChoice(m *FSM, dir Dir, peer types.Role, branches []types.Branch, env map[string]State, memo map[string]State) (State, error) {
	s := m.AddState()
	for _, b := range branches {
		to, err := build(m, b.Cont, env, memo)
		if err != nil {
			return 0, err
		}
		act := Action{Dir: dir, Peer: peer, Label: b.Label, Sort: normSort(b.Sort)}
		if err := m.AddTransition(s, act, to); err != nil {
			return 0, err
		}
	}
	return s, nil
}

func normSort(s types.Sort) types.Sort {
	if s == "" {
		return types.Unit
	}
	return s
}

func copyEnv(env map[string]State) map[string]State {
	out := make(map[string]State, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// ToLocal converts a directed machine back into a local session type,
// introducing μ-binders at the targets of back edges. Fails if the machine is
// not directed.
func ToLocal(m *FSM) (types.Local, error) {
	if !m.Directed() {
		return nil, fmt.Errorf("fsm: machine for %s is not directed; no local type exists", m.role)
	}
	// First find the states that need a binder: targets of edges discovered
	// while the target is still on the DFS stack.
	loop := map[State]bool{}
	color := make([]int, m.NumStates()) // 0 white, 1 grey, 2 black
	var dfs func(State)
	dfs = func(s State) {
		color[s] = 1
		for _, t := range m.next[s] {
			switch color[t.To] {
			case 0:
				dfs(t.To)
			case 1:
				loop[t.To] = true
			}
		}
		color[s] = 2
	}
	dfs(m.initial)

	names := map[State]string{}
	i := 0
	for s := range m.next {
		if loop[State(s)] {
			names[State(s)] = fmt.Sprintf("x%d", i)
			i++
		}
	}

	emitting := map[State]bool{}
	var emit func(State) (types.Local, error)
	emit = func(s State) (types.Local, error) {
		if emitting[s] {
			return types.Var{Name: names[s]}, nil
		}
		ts := m.next[s]
		if len(ts) == 0 {
			return types.End{}, nil
		}
		if loop[s] {
			emitting[s] = true
			defer func() { emitting[s] = false }()
		}
		branches := make([]types.Branch, len(ts))
		for i, t := range ts {
			cont, err := emit(t.To)
			if err != nil {
				return nil, err
			}
			branches[i] = types.Branch{Label: t.Act.Label, Sort: t.Act.Sort, Cont: cont}
		}
		var body types.Local
		if ts[0].Act.Dir == Send {
			body = types.Send{Peer: ts[0].Act.Peer, Branches: branches}
		} else {
			body = types.Recv{Peer: ts[0].Act.Peer, Branches: branches}
		}
		if loop[s] {
			return types.Rec{Name: names[s], Body: body}, nil
		}
		return body, nil
	}
	return emit(m.initial)
}
