package theory

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/types"
)

func refines(t *testing.T, w, wp string) bool {
	t.Helper()
	ok, err := Refines(types.MustParse(w), types.MustParse(wp), 0)
	if err != nil {
		t.Fatalf("Refines(%q, %q): %v", w, wp, err)
	}
	return ok
}

func TestIsSISO(t *testing.T) {
	if !IsSISO(types.MustParse("mu x.p?l.q!m.x")) {
		t.Error("SISO type rejected")
	}
	if IsSISO(types.MustParse("p!{a.end, b.end}")) {
		t.Error("branching type accepted")
	}
}

func TestRefEnd(t *testing.T) {
	if !refines(t, "end", "end") {
		t.Error("end ≲ end failed")
	}
	if refines(t, "end", "p!l.end") || refines(t, "p!l.end", "end") {
		t.Error("end related to an action")
	}
}

func TestRefInOut(t *testing.T) {
	if !refines(t, "p?l.q!m.end", "p?l.q!m.end") {
		t.Error("identity failed")
	}
	if refines(t, "p?l.end", "p?m.end") {
		t.Error("label mismatch accepted")
	}
	// Sort directions as in Fig. A.11.
	if !refines(t, "p!l(nat).end", "p!l(int).end") {
		t.Error("covariant output rejected")
	}
	if !refines(t, "p?l(int).end", "p?l(nat).end") {
		t.Error("contravariant input rejected")
	}
	if refines(t, "p!l(int).end", "p!l(nat).end") {
		t.Error("unsound output sort accepted")
	}
}

func TestRefB(t *testing.T) {
	// Example 2's safe reordering, derived via [ref-B].
	if !refines(t, "p!l2.p?l1.end", "p?l1.p!l2.end") {
		t.Error("output anticipation rejected")
	}
	// And the unsafe direction via (absence of) [ref-A].
	if refines(t, "q?l2.q!l1.end", "q!l1.q?l2.end") {
		t.Error("input anticipation past an output accepted")
	}
}

func TestRefA(t *testing.T) {
	// An input from p anticipated before an input from q.
	if !refines(t, "p?a.q?b.end", "q?b.p?a.end") {
		t.Error("input anticipation rejected")
	}
	// But not past an input from p itself.
	if refines(t, "p?a.p?b.end", "p?b.p?a.end") {
		t.Error("same-peer input reordering accepted")
	}
}

func TestDoubleBufferingRefinement(t *testing.T) {
	// Appendix B.2.1's second example: the optimised kernel refines the
	// projection (both already SISO).
	sub := "s!ready.mu x.s!ready.s?copy.t?ready.t!copy.x"
	sup := "mu x.s!ready.s?copy.t?ready.t!copy.x"
	if !refines(t, sub, sup) {
		t.Error("double-buffering refinement rejected")
	}
}

func TestForgottenActionRejected(t *testing.T) {
	// Fig. A.14 / the Remark of Appendix B.2: without the act side condition
	// T = μt.p?ℓ.t would wrongly refine q?ℓ′.T.
	if refines(t, "mu t.p?l.t", "q?lp.mu t.p?l.t") {
		t.Error("forgotten action accepted by the reference relation")
	}
}

func TestRejectsNonSISO(t *testing.T) {
	if _, err := Refines(types.MustParse("p!{a.end, b.end}"), types.MustParse("p!a.end"), 0); err == nil {
		t.Error("branching type accepted")
	}
	if _, err := Refines(types.Var{Name: "x"}, types.End{}, 0); err == nil {
		t.Error("ill-formed type accepted")
	}
}

// genSISO generates a random closed SISO type.
func genSISO(r *rand.Rand, depth int, vars []string) types.Local {
	if depth <= 0 {
		if len(vars) > 0 && r.Intn(2) == 0 {
			return types.Var{Name: vars[r.Intn(len(vars))]}
		}
		return types.End{}
	}
	peers := []types.Role{"p", "q"}
	labels := []types.Label{"a", "b"}
	switch r.Intn(6) {
	case 0:
		return types.End{}
	case 1:
		name := "v" + string(rune('a'+len(vars)))
		body := genSISOStep(r, depth-1, append(append([]string{}, vars...), name), peers, labels)
		return types.Rec{Name: name, Body: body}
	default:
		return genSISOStep(r, depth-1, vars, peers, labels)
	}
}

func genSISOStep(r *rand.Rand, depth int, vars []string, peers []types.Role, labels []types.Label) types.Local {
	peer := peers[r.Intn(len(peers))]
	label := labels[r.Intn(len(labels))]
	cont := genSISO(r, depth-1, vars)
	if r.Intn(2) == 0 {
		return types.LSend(peer, label, types.Unit, cont)
	}
	return types.LRecv(peer, label, types.Unit, cont)
}

type sisoGen struct{ T types.Local }

func (sisoGen) Generate(r *rand.Rand, size int) reflect.Value {
	d := size
	if d > 5 {
		d = 5
	}
	return reflect.ValueOf(sisoGen{T: genSISO(r, d, nil)})
}

func TestQuickReferenceAgreesWithAlgorithm(t *testing.T) {
	// Differential oracle: on the SISO fragment, whenever the reference
	// relation derives w ≲ w′, the production algorithm must accept w ≤ w′
	// (the algorithm is sound *and* subsumes ≲ on these shapes); and on
	// identical types both must accept.
	f := func(g sisoGen, h sisoGen) bool {
		ref, err := Refines(g.T, h.T, 48)
		if err != nil {
			return false
		}
		res, err := core.CheckTypes("self", g.T, h.T, core.Options{Bound: 12})
		if err != nil {
			return false
		}
		if ref && !res.OK {
			t.Logf("reference accepts but algorithm rejects:\n  sub=%s\n  sup=%s", g.T, h.T)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReferenceReflexive(t *testing.T) {
	f := func(g sisoGen) bool {
		ok, err := Refines(g.T, g.T, 64)
		if err != nil {
			return false
		}
		if !ok {
			t.Logf("reflexivity failed for %s", g.T)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
