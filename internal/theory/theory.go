// Package theory implements the tree refinement relation ≲ of Ghilezan et
// al. as presented in Appendix B.1–B.2 of the paper, for SISO session types
// (single-input single-output: no branching). It is a direct, executable
// transcription of the rules [ref-end], [ref-in], [ref-out], [ref-A] and
// [ref-B] over finitely-represented (μ-recursive) type trees, with
// coinduction realised as assume-on-revisit and a depth bound standing in
// for the infinite unfolding.
//
// The package exists as a *reference semantics*: tests use it as a
// differential oracle for the production algorithm in internal/core on the
// SISO fragment (where the full subtyping relation ≤ coincides with ≲).
package theory

import (
	"fmt"

	"repro/internal/fsm"
	"repro/internal/types"
)

// DefaultDepth bounds the number of unfoldings explored.
const DefaultDepth = 64

// IsSISO reports whether every choice in t has exactly one branch.
func IsSISO(t types.Local) bool {
	switch t := t.(type) {
	case types.End, types.Var:
		return true
	case types.Rec:
		return IsSISO(t.Body)
	case types.Send:
		return len(t.Branches) == 1 && IsSISO(t.Branches[0].Cont)
	case types.Recv:
		return len(t.Branches) == 1 && IsSISO(t.Branches[0].Cont)
	default:
		return false
	}
}

// Refines reports whether w ≲ w′ can be derived within the given unfolding
// depth (0 means DefaultDepth). Both types must be closed, well-formed and
// SISO. A false answer means "not derivable at this depth".
func Refines(w, wp types.Local, depth int) (bool, error) {
	if err := types.ValidateLocal(w); err != nil {
		return false, fmt.Errorf("theory: left: %w", err)
	}
	if err := types.ValidateLocal(wp); err != nil {
		return false, fmt.Errorf("theory: right: %w", err)
	}
	if !IsSISO(w) || !IsSISO(wp) {
		return false, fmt.Errorf("theory: refinement is defined on SISO types only")
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	c := &checker{assumed: map[[2]string]bool{}}
	return c.refines(w, wp, depth), nil
}

type checker struct {
	assumed map[[2]string]bool
}

// head deconstructs an unfolded SISO type into its first action and
// continuation; ok is false for end.
func head(t types.Local) (act fsm.Action, cont types.Local, ok bool) {
	switch t := t.(type) {
	case types.Send:
		b := t.Branches[0]
		return fsm.Action{Dir: fsm.Send, Peer: t.Peer, Label: b.Label, Sort: b.Sort}, b.Cont, true
	case types.Recv:
		b := t.Branches[0]
		return fsm.Action{Dir: fsm.Recv, Peer: t.Peer, Label: b.Label, Sort: b.Sort}, b.Cont, true
	default:
		return fsm.Action{}, nil, false
	}
}

// rebuild prepends action act to continuation cont.
func rebuild(act fsm.Action, cont types.Local) types.Local {
	b := []types.Branch{{Label: act.Label, Sort: act.Sort, Cont: cont}}
	if act.Dir == fsm.Send {
		return types.Send{Peer: act.Peer, Branches: b}
	}
	return types.Recv{Peer: act.Peer, Branches: b}
}

func (c *checker) refines(w, wp types.Local, depth int) bool {
	if depth <= 0 {
		return false
	}
	w = types.Unfold(w)
	wp = types.Unfold(wp)
	key := [2]string{w.String(), wp.String()}
	if c.assumed[key] {
		return true // coinductive hypothesis
	}
	c.assumed[key] = true
	defer delete(c.assumed, key)

	ha, wCont, wOK := head(w)
	if !wOK {
		_, _, wpOK := head(wp)
		return !wpOK // [ref-end]
	}
	hb, wpCont, wpOK := head(wp)
	if !wpOK {
		return false
	}

	// Direct rules [ref-in] / [ref-out].
	if ha.Dir == hb.Dir && ha.Peer == hb.Peer && ha.Label == hb.Label {
		if sortCompatible(ha, hb) && c.refines(wCont, wpCont, depth-1) {
			return true
		}
	}

	// Reordering rules [ref-A] / [ref-B]: find the matching action later in
	// the supertype behind a permitted sequence A(p)/B(p); extract returns
	// the remainder A(p).W′ with the matched action removed. The side
	// condition act(W) = act(A(p).W′) prevents forgotten interactions
	// (Fig. A.14).
	if rest, found := c.extract(ha, wp, depth); found {
		if actSet(wCont) == actSet(rest) {
			return c.refines(wCont, rest, depth-1)
		}
	}
	return false
}

// extract removes the first occurrence of an action matching h from the
// supertype tree wp, provided every action before it is permitted by A(p)
// (for inputs: receives not from p) or B(p) (for outputs: any receives and
// sends not to p). It returns the supertype with that occurrence removed.
func (c *checker) extract(h fsm.Action, wp types.Local, depth int) (types.Local, bool) {
	if depth <= 0 {
		return nil, false
	}
	wp = types.Unfold(wp)
	hb, cont, ok := head(wp)
	if !ok {
		return nil, false
	}
	if hb.Dir == h.Dir && hb.Peer == h.Peer {
		if hb.Label == h.Label && sortCompatible(h, hb) {
			return cont, true // found the anticipated action
		}
		return nil, false // same peer+direction, different label: blocked
	}
	// Is hb skippable before h?
	if h.Dir == fsm.Recv {
		// A(p): only receives from other participants.
		if hb.Dir != fsm.Recv {
			return nil, false
		}
	} else {
		// B(p): receives from anyone, sends to other participants. A send to
		// p with a different label was rejected above; a send to p never
		// reaches here unless peers differ, so only check the direction mix:
		if hb.Dir == fsm.Send && hb.Peer == h.Peer {
			return nil, false
		}
	}
	rest, found := c.extract(h, cont, depth-1)
	if !found {
		return nil, false
	}
	return rebuild(hb, rest), true
}

func sortCompatible(sub, sup fsm.Action) bool {
	if sub.Dir == fsm.Send {
		return types.SubSort(sub.Sort, sup.Sort)
	}
	return types.SubSort(sup.Sort, sub.Sort)
}

// actSet renders the set of (direction, participant) pairs occurring in the
// (possibly infinite) tree of t, computed over its finite representation —
// the function act(W) of Fig. A.12.
func actSet(t types.Local) string {
	set := map[string]bool{}
	var walk func(types.Local)
	walk = func(t types.Local) {
		switch t := t.(type) {
		case types.Send:
			set["!"+string(t.Peer)] = true
			for _, b := range t.Branches {
				walk(b.Cont)
			}
		case types.Recv:
			set["?"+string(t.Peer)] = true
			for _, b := range t.Branches {
				walk(b.Cont)
			}
		case types.Rec:
			walk(t.Body)
		}
	}
	walk(t)
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}
