package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/kmc"
	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/types"
)

// Mutation testing for soundness: take each verified AMR optimisation from
// the registry and derive *unsafe* mutants by reorderings the theory forbids
// (anticipating an input past an output to the same participant, swapping
// same-peer inputs). Every mutant must be rejected by the subtyping
// algorithm; and whenever the mutant system is executable, either k-MC
// rejects it or a random execution exhibits the failure. This ties the
// static layer to the execution layer: "rejected" means "really unsafe", not
// "algorithm too weak" — at least for these mechanically derived mutants.

// swapFirstTwo exchanges the first two actions of a SISO-headed type when
// both are single-branch prefixes, producing a reordering mutant.
func swapFirstTwo(t types.Local) (types.Local, bool) {
	first, ok := singlePrefix(t)
	if !ok {
		return nil, false
	}
	second, ok := singlePrefix(first.cont)
	if !ok {
		return nil, false
	}
	inner := second.cont
	return second.rebuild(first.rebuild(inner)), true
}

type prefixNode struct {
	send  bool
	peer  types.Role
	label types.Label
	sort  types.Sort
	cont  types.Local
}

func singlePrefix(t types.Local) (prefixNode, bool) {
	switch t := t.(type) {
	case types.Send:
		if len(t.Branches) == 1 {
			b := t.Branches[0]
			return prefixNode{send: true, peer: t.Peer, label: b.Label, sort: b.Sort, cont: b.Cont}, true
		}
	case types.Recv:
		if len(t.Branches) == 1 {
			b := t.Branches[0]
			return prefixNode{send: false, peer: t.Peer, label: b.Label, sort: b.Sort, cont: b.Cont}, true
		}
	}
	return prefixNode{}, false
}

func (p prefixNode) rebuild(cont types.Local) types.Local {
	if p.send {
		return types.LSend(p.peer, p.label, p.sort, cont)
	}
	return types.LRecv(p.peer, p.label, p.sort, cont)
}

func TestMutatedKernelRejectedAndDeadlocks(t *testing.T) {
	// The canonical unsafe mutant of the double-buffering kernel: receive
	// the value before announcing readiness.
	e := protocols.DoubleBuffering()
	bad := types.MustParse("mu x.s?value.s!ready.t?ready.t!value.x")
	res, err := core.CheckTypes("k", bad, e.Locals["k"], core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("unsafe kernel accepted by subtyping")
	}
	// The mutant system deadlocks in every schedule.
	machines := []*fsm.FSM{
		fsm.MustFromLocal("k", bad),
		fsm.MustFromLocal("s", e.Locals["s"]),
		fsm.MustFromLocal("t", e.Locals["t"]),
	}
	for seed := int64(0); seed < 5; seed++ {
		if _, err := sim.Run(machines, 1000, seed); err == nil {
			t.Errorf("seed %d: mutant system did not get stuck", seed)
		}
	}
	// And k-MC rejects it too.
	sys, err := kmc.NewSystem(machines...)
	if err != nil {
		t.Fatal(err)
	}
	if r := kmc.Check(sys, 2); r.OK {
		t.Error("k-MC accepted the mutant system")
	}
}

func TestUnsafeInputAnticipationMutantsRejected(t *testing.T) {
	// For every registry protocol, derive a mutant of each local type by
	// swapping its first two actions. Mutants whose swap anticipates an
	// input past an output to the same peer — the unsafe direction of
	// Example 2 — must be rejected against the original.
	count := 0
	for _, e := range protocols.Registry() {
		for r, orig := range e.Locals {
			unfolded := types.Unfold(orig)
			first, ok1 := singlePrefix(unfolded)
			if !ok1 {
				continue
			}
			second, ok2 := singlePrefix(first.cont)
			if !ok2 {
				continue
			}
			// Only the provably unsafe pattern: output to p then input from
			// p, mutated to input-first.
			if !(first.send && !second.send && first.peer == second.peer) {
				continue
			}
			mutant, ok := swapFirstTwo(unfolded)
			if !ok {
				continue
			}
			if err := types.ValidateLocal(mutant); err != nil {
				continue
			}
			res, err := core.CheckTypes(r, mutant, orig, core.Options{Bound: 6})
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, r, err)
			}
			if res.OK {
				t.Errorf("%s/%s: unsafe mutant accepted:\n  mutant=%s\n  orig=%s", e.Name, r, mutant, orig)
			}
			count++
		}
	}
	if count == 0 {
		t.Skip("no applicable mutants in the registry (pattern not present)")
	}
	t.Logf("rejected %d unsafe mutants", count)
}

func TestSafeOutputAnticipationMutantsAccepted(t *testing.T) {
	// The dual sanity check: swapping an input followed by an output to a
	// *different* peer into output-first is the safe AMR; the algorithm must
	// accept those mutants.
	accepted, total := 0, 0
	for _, e := range protocols.Registry() {
		for r, orig := range e.Locals {
			unfolded := types.Unfold(orig)
			first, ok1 := singlePrefix(unfolded)
			if !ok1 {
				continue
			}
			second, ok2 := singlePrefix(first.cont)
			if !ok2 {
				continue
			}
			if !(!first.send && second.send) {
				continue
			}
			mutant, ok := swapFirstTwo(unfolded)
			if !ok {
				continue
			}
			if err := types.ValidateLocal(mutant); err != nil {
				continue
			}
			total++
			res, err := core.CheckTypes(r, mutant, orig, core.Options{Bound: 8})
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, r, err)
			}
			if res.OK {
				accepted++
			} else {
				t.Logf("%s/%s: safe-looking mutant rejected (may be bound-limited): %s", e.Name, r, mutant)
			}
		}
	}
	if total == 0 {
		t.Skip("no applicable mutants")
	}
	if accepted == 0 {
		t.Errorf("no safe mutants accepted (%d candidates)", total)
	}
	t.Logf("accepted %d/%d safe output anticipations", accepted, total)
}
