package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/types"
)

// Ablation benchmarks for the implementation choices of Appendix B.5 that
// DESIGN.md calls out: the fail-early reduction check, and the sensitivity
// of the algorithm to the recursion-unrolling bound.

func BenchmarkAblationFailFast(b *testing.B) {
	cases := []struct {
		name     string
		sub, sup types.Local
		bound    int
	}{
		{
			name: "double-buffering-valid",
			sub:  types.MustParse("s!ready.mu x.s!ready.s?value.t?ready.t!value.x"),
			sup:  types.MustParse("mu x.s!ready.s?value.t?ready.t!value.x"),
		},
		{
			name: "unsafe-reordering-invalid",
			sub:  types.MustParse("mu x.s?value.s!ready.t?ready.t!value.x"),
			sup:  types.MustParse("mu x.s!ready.s?value.t?ready.t!value.x"),
		},
		{
			name: "nested-choice-4",
			sub:  nestedSub(4),
			sup:  nestedSup(4),
		},
	}
	for _, c := range cases {
		for _, failFast := range []bool{true, false} {
			b.Run(fmt.Sprintf("%s/failfast=%v", c.name, failFast), func(b *testing.B) {
				opts := core.Options{Bound: c.bound, NoFailFast: !failFast}
				for i := 0; i < b.N; i++ {
					if _, err := core.CheckTypes("k", c.sub, c.sup, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func nestedSub(n int) types.Local {
	sub, _ := protocols.NestedChoice(n)
	return sub
}

func nestedSup(n int) types.Local {
	_, sup := protocols.NestedChoice(n)
	return sup
}

func BenchmarkAblationBound(b *testing.B) {
	sub, sup := protocols.KBuffering(4)
	for _, bound := range []int{10, 20, 40, 80} {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.CheckTypes("k", sub, sup, core.Options{Bound: bound})
				if err != nil || !res.OK {
					b.Fatal("check failed")
				}
			}
		})
	}
}

func BenchmarkSubtypePaperExamples(b *testing.B) {
	cases := []struct{ name, sub, sup string }{
		{"example2", "p!l2.p?l1.end", "p?l1.p!l2.end"},
		{"double-buffering", "s!ready.mu x.s!ready.s?value.t?ready.t!value.x", "mu x.s!ready.s?value.t?ready.t!value.x"},
		{"ring-choice", "mu t.c!{add.a?add.t, sub.a?add.t}", "mu t.a?add.c!{add.t, sub.t}"},
		{"alternating-bit", "mu t.s?{d0.s!a0.t, d1.s!a1.t}", "mu t.s?d0.s!{a0.mu x.s?d1.s!{a0.x, a1.t}, a1.t}"},
	}
	for _, c := range cases {
		sub, sup := types.MustParse(c.sub), types.MustParse(c.sup)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.CheckTypes("self", sub, sup, core.Options{})
				if err != nil || !res.OK {
					b.Fatal("check failed")
				}
			}
		})
	}
}
