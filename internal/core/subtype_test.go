package core

import (
	"errors"
	"testing"

	"repro/internal/fsm"
	"repro/internal/project"
	"repro/internal/types"
)

// check runs CheckTypes with a default bound and fails the test on error.
func check(t *testing.T, sub, sup string) bool {
	t.Helper()
	res, err := CheckTypes("self", types.MustParse(sub), types.MustParse(sup), Options{})
	if err != nil {
		t.Fatalf("CheckTypes(%q, %q): %v", sub, sup, err)
	}
	return res.OK
}

func TestPaperExample2SafeReordering(t *testing.T) {
	// Example 2: T′Q = p!ℓ2.p?ℓ1.end ≤ TQ = p?ℓ1.p!ℓ2.end (output anticipated
	// before an input: rule ⤳B).
	if !check(t, "p!l2.p?l1.end", "p?l1.p!l2.end") {
		t.Error("safe reordering rejected")
	}
}

func TestPaperExample2UnsafeReordering(t *testing.T) {
	// Example 2: T′P = q?ℓ2.q!ℓ1.end ≰ TP = q!ℓ1.q?ℓ2.end (anticipating an
	// input before an output deadlocks).
	if check(t, "q?l2.q!l1.end", "q!l1.q?l2.end") {
		t.Error("unsafe reordering accepted")
	}
}

func TestPaperDoubleBufferingKernel(t *testing.T) {
	// §3.2 worked example: T = s!ready.T′ ≤ T′ where
	// T′ = μx.s!ready.s?copy.t?ready.t!copy.x.
	sup := "mu x.s!ready.s?copy.t?ready.t!copy.x"
	sub := "s!ready.mu x.s!ready.s?copy.t?ready.t!copy.x"
	if !check(t, sub, sup) {
		t.Error("double-buffering optimisation rejected")
	}
	// The supertype is not a subtype of the optimised type in reverse... the
	// reverse direction anticipates nothing and in fact holds trivially? No:
	// the optimised type *requires* an extra leading send, so the projected
	// kernel cannot replace it (it would receive copy before the second
	// ready is sent, which the optimised protocol's peers may rely on). Our
	// algorithm must reject the reverse because the unrolled send never
	// aligns.
	if check(t, sup, sub) {
		t.Error("reverse double-buffering subtyping accepted")
	}
}

func TestPaperForgottenActionRejected(t *testing.T) {
	// Fig. A.14: T = μt.p?ℓ.t must NOT be a subtype of T′ = q?ℓ′.T: the
	// initial q?ℓ′ would be forgotten. The [asm] side condition
	// act(ρ′) ⊇ act(π′) rejects it.
	if check(t, "mu t.p?l.t", "q?lp.mu t.p?l.t") {
		t.Error("forgotten action accepted (asm side condition failed)")
	}
}

func TestPaperRingOptimisation(t *testing.T) {
	// Appendix B.4: ring with choice. T (optimised, sends before receiving)
	// is a subtype of T′ (projected).
	sup := "mu t.a?add.c!{add.t, sub.t}"
	sub := "mu t.c!{add.a?add.t, sub.a?add.t}"
	if !check(t, sub, sup) {
		t.Error("ring optimisation rejected")
	}
}

func TestPaperAlternatingBit(t *testing.T) {
	// Appendix B.4: the alternating bit receiver specification is a subtype
	// of its projection.
	sub := "mu t.s?{d0.s!a0.t, d1.s!a1.t}"
	sup := "mu t.s?d0.s!{a0.mu x.s?d1.s!{a0.x, a1.t}, a1.t}"
	if !check(t, sub, sup) {
		t.Error("alternating-bit subtyping rejected")
	}
}

func TestReflexivity(t *testing.T) {
	cases := []string{
		"end",
		"p!l.end",
		"mu x.s!ready.x",
		"mu x.s!ready.s?copy.t?ready.t!copy.x",
		"mu t.a?add.c!{add.t, sub.t}",
		"mu t.s?d0.s!{a0.mu x.s?d1.s!{a0.x, a1.t}, a1.t}",
		"t?ready.s!{value(i32).end, stop.end}",
	}
	for _, src := range cases {
		if !check(t, src, src) {
			t.Errorf("T ≤ T failed for %s", src)
		}
	}
}

func TestSynchronousSubtypingCases(t *testing.T) {
	// Internal choice: the subtype may offer FEWER outputs.
	if !check(t, "p!{a.end}", "p!{a.end, b.end}") {
		t.Error("output subset rejected")
	}
	if check(t, "p!{a.end, b.end}", "p!{a.end}") {
		t.Error("output superset accepted")
	}
	// External choice: the subtype may accept MORE inputs.
	if !check(t, "p?{a.end, b.end}", "p?{a.end}") {
		t.Error("input superset rejected")
	}
	if check(t, "p?{a.end}", "p?{a.end, b.end}") {
		t.Error("input subset accepted")
	}
	// Mismatched labels.
	if check(t, "p!a.end", "p!b.end") {
		t.Error("label mismatch accepted")
	}
	// Mismatched peers.
	if check(t, "p!a.end", "q!a.end") {
		t.Error("peer mismatch accepted")
	}
	// Continuations must also relate.
	if check(t, "p!a.p!x.end", "p!a.p!y.end") {
		t.Error("continuation mismatch accepted")
	}
}

// TestCheckRejectsUnknownSorts pins the registry gate on the certification
// path: a machine whose actions carry a sort nobody registered errors out
// (ErrUnknownSort) rather than certifying a protocol whose payloads have no
// meaning — on either side of the check, and for vectors over unknown
// elements; vectors over registered sorts pass.
func TestCheckRejectsUnknownSorts(t *testing.T) {
	known := "q!m(vec<complex128>).end"
	for _, tc := range []struct{ sub, sup string }{
		{"q!m(frob).end", known},
		{known, "q!m(frob).end"},
		{"q!m(vec<frob>).end", "q!m(vec<frob>).end"},
	} {
		_, err := CheckTypes("self", types.MustParse(tc.sub), types.MustParse(tc.sup), Options{})
		if !errors.Is(err, ErrUnknownSort) {
			t.Errorf("Check(%q, %q) err = %v, want ErrUnknownSort", tc.sub, tc.sup, err)
		}
	}
	res, err := CheckTypes("self", types.MustParse(known), types.MustParse(known), Options{})
	if err != nil || !res.OK {
		t.Errorf("vec<complex128> reflexive check: ok=%v err=%v", res.OK, err)
	}
}

func TestSortSubtyping(t *testing.T) {
	// Outputs are covariant: sending nat where int is expected is fine.
	if !check(t, "p!l(nat).end", "p!l(int).end") {
		t.Error("covariant output rejected")
	}
	if check(t, "p!l(int).end", "p!l(nat).end") {
		t.Error("unsound output sort accepted")
	}
	// Inputs are contravariant: accepting int where nat is expected is fine.
	if !check(t, "p?l(int).end", "p?l(nat).end") {
		t.Error("contravariant input rejected")
	}
	if check(t, "p?l(nat).end", "p?l(int).end") {
		t.Error("unsound input sort accepted")
	}
}

func TestEndVersusAction(t *testing.T) {
	if check(t, "end", "p!l.end") {
		t.Error("end accepted as subtype of an action")
	}
	if check(t, "p!l.end", "end") {
		t.Error("action accepted as subtype of end")
	}
	if !check(t, "end", "end") {
		t.Error("end ≤ end rejected")
	}
}

func TestUnrolledStreamingOptimisation(t *testing.T) {
	// The streaming benchmark's AMR: send n values before waiting for the
	// corresponding readys. For all small n, the unrolled type is a subtype
	// of the projection μx.t?ready.t!value.x.
	sup := types.MustParse("mu x.t?ready.t!value.x")
	for n := 1; n <= 6; n++ {
		sub := unrolledStream(n)
		res, err := CheckTypes("s", sub, sup, Options{Bound: 2 * (n + 2)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Errorf("unroll %d rejected", n)
		}
	}
}

// unrolledStream builds t!value^n . μx.t?ready.t!value.x.
func unrolledStream(n int) types.Local {
	t := types.MustParse("mu x.t?ready.t!value.x")
	for i := 0; i < n; i++ {
		t = types.LSend("t", "value", types.Unit, t)
	}
	return t
}

func TestKBufferingOptimisation(t *testing.T) {
	// The k-buffering generalisation of the double-buffering kernel: unroll
	// k leading s!ready sends.
	sup := types.MustParse("mu x.s!ready.s?copy.t?ready.t!copy.x")
	for k := 1; k <= 6; k++ {
		sub := sup
		for i := 0; i < k; i++ {
			sub = types.LSend("s", "ready", types.Unit, sub)
		}
		res, err := CheckTypes("k", sub, sup, Options{Bound: 2 * (k + 2)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Errorf("%d-buffering rejected", k)
		}
	}
}

func TestSubtypingAgainstProjection(t *testing.T) {
	// Top-down workflow: project the double-buffering global type, then
	// verify the optimised kernel against the projection.
	g := types.MustParseGlobal("mu x.k->s:ready.s->k:value.t->k:ready.k->t:value.x")
	proj := project.MustProject(g, "k")
	opt := types.MustParse("s!ready.mu x.s!ready.s?value.t?ready.t!value.x")
	res, err := CheckTypes("k", opt, proj, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Error("optimised kernel rejected against projection")
	}
	// The *unoptimised* projections of the other roles are reflexively fine.
	for _, r := range []types.Role{"s", "t"} {
		p := project.MustProject(g, r)
		res, err := CheckTypes(r, p, p, Options{})
		if err != nil || !res.OK {
			t.Errorf("projection of %s not self-subtype: %v %v", r, res.OK, err)
		}
	}
}

func TestRejectsNonDirectedMachines(t *testing.T) {
	mixed := fsm.New("p")
	s2 := mixed.AddState()
	mixed.MustAddTransition(mixed.Initial(), fsm.Action{Dir: fsm.Send, Peer: "q", Label: "a", Sort: types.Unit}, s2)
	mixed.MustAddTransition(mixed.Initial(), fsm.Action{Dir: fsm.Recv, Peer: "q", Label: "b", Sort: types.Unit}, s2)
	ok := fsm.MustFromLocal("p", types.MustParse("q!a.end"))
	if _, err := Check(mixed, ok, Options{}); err == nil {
		t.Error("mixed subtype machine accepted")
	}
	if _, err := Check(ok, mixed, Options{}); err == nil {
		t.Error("mixed supertype machine accepted")
	}
}

func TestBoundExhaustion(t *testing.T) {
	// With a bound of 1 the double-buffering optimisation cannot close its
	// loop (the derivation needs two visits of the loop head).
	sub := types.MustParse("s!ready.mu x.s!ready.s?copy.t?ready.t!copy.x")
	sup := types.MustParse("mu x.s!ready.s?copy.t?ready.t!copy.x")
	res, err := CheckTypes("k", sub, sup, Options{Bound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Skip("bound 1 unexpectedly sufficient; derivation shallower than the paper's")
	}
	// A larger bound succeeds.
	res, err = CheckTypes("k", sub, sup, Options{Bound: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Error("bound 4 insufficient for double buffering")
	}
}

func TestFailFastEquivalence(t *testing.T) {
	// Fail-fast is an optimisation only: outcomes agree with it disabled.
	pairs := [][2]string{
		{"p!l2.p?l1.end", "p?l1.p!l2.end"},
		{"q?l2.q!l1.end", "q!l1.q?l2.end"},
		{"s!ready.mu x.s!ready.s?copy.t?ready.t!copy.x", "mu x.s!ready.s?copy.t?ready.t!copy.x"},
		{"mu t.c!{add.a?add.t, sub.a?add.t}", "mu t.a?add.c!{add.t, sub.t}"},
		{"mu t.p?l.t", "q?lp.mu t.p?l.t"},
	}
	for _, p := range pairs {
		fast, err := CheckTypes("self", types.MustParse(p[0]), types.MustParse(p[1]), Options{})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := CheckTypes("self", types.MustParse(p[0]), types.MustParse(p[1]), Options{NoFailFast: true})
		if err != nil {
			t.Fatal(err)
		}
		if fast.OK != slow.OK {
			t.Errorf("fail-fast changed outcome for %s ≤ %s: %v vs %v", p[0], p[1], fast.OK, slow.OK)
		}
		if fast.OK && fast.Stats.Visits > slow.Stats.Visits {
			t.Logf("note: fail-fast did more work on %s ≤ %s", p[0], p[1])
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	res, err := CheckTypes("k",
		types.MustParse("s!ready.mu x.s!ready.s?copy.t?ready.t!copy.x"),
		types.MustParse("mu x.s!ready.s?copy.t?ready.t!copy.x"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Visits == 0 || res.Stats.Reductions == 0 || res.Stats.MaxPrefix == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

func TestStreamingWithChoiceOptimisation(t *testing.T) {
	// The full streaming protocol (with stop): the optimised source unrolls
	// one value send before the loop; after stopping it has no pending
	// obligations because each unrolled send anticipated a ready receive.
	sup := "mu x.t?ready.t!{value.x, stop.end}"
	// One-step unroll that preserves the choice structure: send a value
	// immediately, then behave as a machine which, after each ready, either
	// sends a value (loop) or sends stop and *then* consumes the final
	// outstanding ready.
	sub := "t!value.mu x.t?ready.t!{value.x, stop.t?ready.end}"
	if !check(t, sub, sup) {
		t.Error("optimised streaming with choice rejected")
	}
}
