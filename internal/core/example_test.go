package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/types"
)

// ExampleCheckTypes verifies the paper's double-buffering optimisation: the
// kernel that sends two readys up front may replace the projected kernel.
func ExampleCheckTypes() {
	projected := types.MustParse("mu x.s!ready.s?value.t?ready.t!value.x")
	optimised := types.MustParse("s!ready.mu x.s!ready.s?value.t?ready.t!value.x")

	res, err := core.CheckTypes("k", optimised, projected, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("optimised ≤ projected:", res.OK)

	// The reverse replacement is refused.
	rev, _ := core.CheckTypes("k", projected, optimised, core.Options{})
	fmt.Println("projected ≤ optimised:", rev.OK)
	// Output:
	// optimised ≤ projected: true
	// projected ≤ optimised: false
}

// ExampleCheckTypes_unsafe shows Example 2 of the paper: anticipating an
// input before an output to the same participant deadlocks and is rejected.
func ExampleCheckTypes_unsafe() {
	sub := types.MustParse("q?l2.q!l1.end")
	sup := types.MustParse("q!l1.q?l2.end")
	res, _ := core.CheckTypes("p", sub, sup, core.Options{})
	fmt.Println(res.OK)
	// Output:
	// false
}
