package core

import (
	"fmt"

	"repro/internal/fsm"
)

// tracer records which rules of Fig. 5 fired, producing a human-readable
// derivation like the worked examples of §3.2 and Appendix B.4. Tracing is
// off unless Options.Trace is set; every hook is behind a nil check so the
// fast path pays a single branch.
type tracer struct {
	lines []string
	depth int
}

func (t *tracer) push() {
	if t != nil {
		t.depth++
	}
}

func (t *tracer) pop() {
	if t != nil {
		t.depth--
	}
}

func (t *tracer) logf(format string, args ...any) {
	if t == nil {
		return
	}
	indent := t.depth
	if indent > 32 {
		indent = 32
	}
	pad := make([]byte, indent*2)
	for i := range pad {
		pad[i] = ' '
	}
	t.lines = append(t.lines, string(pad)+fmt.Sprintf(format, args...))
}

// ruleName maps the direction pair at a visit to the Fig. 5 rule applied.
func ruleName(subOut, supOut bool) string {
	switch {
	case subOut && !supOut:
		return "[oi]"
	case subOut && supOut:
		return "[oo]"
	case !subOut && !supOut:
		return "[ii]"
	default:
		return "[io]"
	}
}

func (v *visitor) traceVisit(ls, rs fsm.State) {
	if v.tr == nil {
		return
	}
	v.tr.logf("visit ⟨%s, S%d⟩ ≤ ⟨%s, S%d⟩", &v.pre[0], ls, &v.pre[1], rs)
}

func (v *visitor) traceRule(rule string, detail string) {
	if v.tr == nil {
		return
	}
	v.tr.logf("%s %s", rule, detail)
}
