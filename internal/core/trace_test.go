package core

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func traceOf(t *testing.T, sub, sup string) (Result, string) {
	t.Helper()
	res, err := CheckTypes("self", types.MustParse(sub), types.MustParse(sup), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res, strings.Join(res.Trace, "\n")
}

func TestTraceDoubleBufferingDerivation(t *testing.T) {
	// The §3.2 worked example must close its derivation with [asm], having
	// applied [oo] (the unrolled send against the loop's send) on the way.
	res, trace := traceOf(t,
		"s!ready.mu x.s!ready.s?copy.t?ready.t!copy.x",
		"mu x.s!ready.s?copy.t?ready.t!copy.x")
	if !res.OK {
		t.Fatal("derivation failed")
	}
	for _, rule := range []string{"[oo]", "[oi]", "[ii]", "[io]", "[asm]"} {
		if !strings.Contains(trace, rule) {
			t.Errorf("trace missing %s:\n%s", rule, trace)
		}
	}
}

func TestTraceUnsafeReordering(t *testing.T) {
	res, trace := traceOf(t, "q?l2.q!l1.end", "q!l1.q?l2.end")
	if res.OK {
		t.Fatal("unsafe reordering accepted")
	}
	if !strings.Contains(trace, "fail-early") {
		t.Errorf("trace missing fail-early rejection:\n%s", trace)
	}
}

func TestTraceEndRule(t *testing.T) {
	res, trace := traceOf(t, "p!l.end", "p!l.end")
	if !res.OK {
		t.Fatal("identity failed")
	}
	if !strings.Contains(trace, "[end]") {
		t.Errorf("trace missing [end]:\n%s", trace)
	}
}

func TestTraceForgottenAction(t *testing.T) {
	// Fig. A.14: the rejection happens at the recursion bound, not via [asm].
	res, trace := traceOf(t, "mu t.p?l.t", "q?lp.mu t.p?l.t")
	if res.OK {
		t.Fatal("forgotten action accepted")
	}
	if strings.Contains(trace, "[asm]") {
		t.Errorf("asm fired despite the act-check:\n%s", trace)
	}
	if !strings.Contains(trace, "bound exhausted") {
		t.Errorf("trace missing bound exhaustion:\n%s", trace)
	}
}

func TestTraceOffByDefault(t *testing.T) {
	res, err := CheckTypes("self", types.MustParse("p!l.end"), types.MustParse("p!l.end"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace recorded without Options.Trace")
	}
}
