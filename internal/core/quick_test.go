package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

// genClosed generates a random closed, well-formed local type whose peers are
// drawn from {p, q}. Guarded recursion only.
func genClosed(r *rand.Rand, depth int, vars []string) types.Local {
	if depth <= 0 {
		if len(vars) > 0 && r.Intn(2) == 0 {
			return types.Var{Name: vars[r.Intn(len(vars))]}
		}
		return types.End{}
	}
	switch r.Intn(6) {
	case 0:
		return types.End{}
	case 1:
		name := "v" + string(rune('a'+len(vars)))
		body := genGuarded(r, depth-1, append(append([]string{}, vars...), name))
		return types.Rec{Name: name, Body: body}
	default:
		return genGuarded(r, depth-1, vars)
	}
}

func genGuarded(r *rand.Rand, depth int, vars []string) types.Local {
	peers := []types.Role{"p", "q"}
	labels := []types.Label{"a", "b", "c"}
	peer := peers[r.Intn(len(peers))]
	n := 1 + r.Intn(2)
	used := map[types.Label]bool{}
	var branches []types.Branch
	for i := 0; i < n; i++ {
		l := labels[r.Intn(len(labels))]
		if used[l] {
			continue
		}
		used[l] = true
		branches = append(branches, types.Branch{Label: l, Sort: types.Unit, Cont: genClosed(r, depth-1, vars)})
	}
	if r.Intn(2) == 0 {
		return types.Send{Peer: peer, Branches: branches}
	}
	return types.Recv{Peer: peer, Branches: branches}
}

type closedGen struct{ T types.Local }

func (closedGen) Generate(r *rand.Rand, size int) reflect.Value {
	d := size
	if d > 5 {
		d = 5
	}
	return reflect.ValueOf(closedGen{T: genClosed(r, d, nil)})
}

func TestQuickReflexivity(t *testing.T) {
	// Theorem: T ≤ T for every T (the paper argues the algorithm preserves
	// reflexivity given a sufficient bound).
	f := func(g closedGen) bool {
		res, err := CheckTypes("self", g.T, g.T, Options{Bound: 8})
		if err != nil {
			t.Logf("CheckTypes(%s): %v", g.T, err)
			return false
		}
		if !res.OK {
			t.Logf("reflexivity failed for %s", g.T)
		}
		return res.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickOutputAnticipationSound(t *testing.T) {
	// For any T that begins with an input from q, prefixing the subtype with
	// an output p!x (p ≠ q) that T performs immediately after that input is
	// the canonical safe AMR; constructed as: sub = p!x.q?l.T', sup = q?l.p!x.T'.
	f := func(g closedGen) bool {
		inner := g.T
		sup := types.LRecv("q", "l", types.Unit, types.LSend("p", "x", types.Unit, inner))
		sub := types.LSend("p", "x", types.Unit, types.LRecv("q", "l", types.Unit, inner))
		res, err := CheckTypes("self", sub, sup, Options{Bound: 8})
		if err != nil {
			return false
		}
		if !res.OK {
			t.Logf("anticipation rejected for continuation %s", inner)
		}
		return res.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickInputAnticipationUnsound(t *testing.T) {
	// The converse reordering — anticipating an input before an output to
	// the same participant — is never a subtype (it can deadlock): for
	// sub = q?l.q!x.T', sup = q!x.q?l.T' the algorithm must say no.
	f := func(g closedGen) bool {
		inner := g.T
		sup := types.LSend("q", "x", types.Unit, types.LRecv("q", "l", types.Unit, inner))
		sub := types.LRecv("q", "l", types.Unit, types.LSend("q", "x", types.Unit, inner))
		res, err := CheckTypes("self", sub, sup, Options{Bound: 6})
		if err != nil {
			return false
		}
		return !res.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtypePassesKMCWitness(t *testing.T) {
	// Soundness cross-check on the streaming family: if the unrolled source
	// is accepted against its projection, then the system {unrolled source,
	// projected sink} must be k-MC for some k — exercised for random unroll
	// depths.
	f := func(nRaw uint8) bool {
		n := int(nRaw%5) + 1
		sub := unrolledStream(n)
		sup := types.MustParse("mu x.t?ready.t!value.x")
		res, err := CheckTypes("s", sub, sup, Options{Bound: 2 * (n + 2)})
		if err != nil || !res.OK {
			t.Logf("subtype rejected at n=%d", n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
