package core

import (
	"strings"

	"repro/internal/fsm"
)

// entry is one transition in a prefix, lazily removable (Appendix B.5).
type entry struct {
	act     fsm.Action
	removed bool
}

// prefix is a SISO session prefix π represented as a list of lazily-removable
// transitions. Elements are removed either by advancing start (when they are
// at the head) or by setting their removed flag and recording the index, so
// that a snapshot can restore the prefix in O(changes) without copying.
//
// Invariant: if the prefix is non-empty then entries[start] is not removed.
type prefix struct {
	entries []entry
	start   int
	removed []int
}

// snapshot records the three sizes needed to revert a prefix (Appendix B.5).
type snapshot struct {
	size    int // len(entries) at snapshot time
	start   int
	removed int // len(removed) at snapshot time
}

func (p *prefix) push(a fsm.Action) {
	p.entries = append(p.entries, entry{act: a})
}

func (p *prefix) empty() bool { return p.start >= len(p.entries) }

// head returns the first live transition. Callers must check empty first.
func (p *prefix) head() fsm.Action { return p.entries[p.start].act }

// normalize advances start past removed entries, maintaining the invariant.
func (p *prefix) normalize() {
	for p.start < len(p.entries) && p.entries[p.start].removed {
		p.start++
	}
}

// popHead removes the head transition by advancing start.
func (p *prefix) popHead() {
	p.start++
	p.normalize()
}

// removeAt removes the entry at index i. If i is the head the start index is
// advanced; otherwise the entry is lazily flagged.
func (p *prefix) removeAt(i int) {
	if i == p.start {
		p.popHead()
		return
	}
	p.entries[i].removed = true
	p.removed = append(p.removed, i)
}

func (p *prefix) snapshot() snapshot {
	return snapshot{size: len(p.entries), start: p.start, removed: len(p.removed)}
}

// restore reverts the prefix to a previously taken snapshot: entries removed
// since are resurrected, appended entries truncated and start reset.
func (p *prefix) restore(s snapshot) {
	for _, i := range p.removed[s.removed:] {
		p.entries[i].removed = false
	}
	p.removed = p.removed[:s.removed]
	p.entries = p.entries[:s.size]
	p.start = s.start
}

// live returns the live transitions (those not removed), starting at start.
// Used for the assumption check and for diagnostics.
func (p *prefix) live() []fsm.Action {
	var out []fsm.Action
	for i := p.start; i < len(p.entries); i++ {
		if !p.entries[i].removed {
			out = append(out, p.entries[i].act)
		}
	}
	return out
}

// liveLen returns the number of live transitions without allocating.
func (p *prefix) liveLen() int {
	n := 0
	for i := p.start; i < len(p.entries); i++ {
		if !p.entries[i].removed {
			n++
		}
	}
	return n
}

// liveEqualAt reports whether the live suffix now equals the live suffix at
// the time snapshot s was taken. Entries present at snapshot time but lazily
// removed since were live then, so they are compared against the snapshot
// window with their flags ignored up to s.removed changes... concretely: the
// snapshot window is entries[s.start:s.size] with the removal flags recorded
// *before* index s.removed, which restore would resurrect. We therefore
// reconstruct liveness of the snapshot window from the removed log.
func (p *prefix) liveEqualAt(s snapshot) bool {
	// Removals logged after s.removed happened after the snapshot; the log
	// segment is short, so a linear scan beats building a set.
	removedSince := p.removed[s.removed:]
	wasLiveAtSnapshot := func(j int) bool {
		if !p.entries[j].removed {
			return true
		}
		for _, r := range removedSince {
			if r == j {
				return true
			}
		}
		return false
	}
	// Walk the two live sequences in lock step.
	i := p.start // current window
	j := s.start // snapshot window
	for {
		// Advance i to next currently-live entry.
		for i < len(p.entries) && p.entries[i].removed {
			i++
		}
		// Advance j to next snapshot-live entry: live at snapshot time means
		// not removed now, or removed after the snapshot.
		for j < s.size && !wasLiveAtSnapshot(j) {
			j++
		}
		iDone := i >= len(p.entries)
		jDone := j >= s.size
		if iDone || jDone {
			return iDone && jDone
		}
		if p.entries[i].act != p.entries[j].act {
			return false
		}
		i++
		j++
	}
}

func (p *prefix) String() string {
	live := p.live()
	parts := make([]string, len(live))
	for i, a := range live {
		parts[i] = a.String()
	}
	return strings.Join(parts, ".")
}
