// Package core implements the paper's primary contribution: a sound,
// terminating algorithm for asynchronous multiparty session subtyping (§3.2,
// Fig. 5), in the FSM-based formulation of Appendix B.5.
//
// Check(sub, sup) asks whether the optimised machine sub may safely replace
// the projected machine sup: every process conforming to sub can be used
// where a process conforming to sup is expected, in any multiparty context,
// without introducing deadlocks or communication mismatches. Asynchronous
// message reordering is captured by the prefix reduction rules: an input
// p?ℓ may be anticipated before inputs that are not from p (rule ⤳A), and an
// output p!ℓ may be anticipated before any inputs and before outputs that are
// not to p (rule ⤳B).
//
// The full relation is undecidable, so the algorithm bounds how many times
// each pair of states may be revisited along a derivation path (the paper's
// recursion-unrolling bound n). A "true" answer is sound; a "false" answer
// means either the subtyping does not hold or the bound was insufficient.
//
// DESIGN.md ("Subtyping checker implementation choices, Appendix B.5")
// records the fail-early reduction and the α-canonical memoisation that
// dominate the checker's running time, and the ablation benchmarks that
// keep them honest.
package core
