package core

import (
	"errors"
	"fmt"

	"repro/internal/fsm"
	"repro/internal/types"
)

// DefaultBound is the default number of times a pair of states may be
// revisited along one derivation path. Looping protocols close their cycle
// within two visits of the loop head, so a small bound suffices in practice;
// raise it for deeply unrolled optimisations.
const DefaultBound = 8

// Options configures the algorithm.
type Options struct {
	// Bound is the recursion-unrolling bound n. Zero means DefaultBound.
	Bound int
	// NoFailFast disables the fail-early reduction check of Appendix B.5
	// (used for benchmarking its effect; results are unchanged).
	NoFailFast bool
	// Trace records the derivation (which Fig. 5 rules fired, with the
	// prefixes at each step) into Result.Trace — the executable counterpart
	// of the paper's worked derivation trees.
	Trace bool
}

// Stats reports the work performed by a call to Check.
type Stats struct {
	Visits     int // number of visit steps (proof-tree nodes explored)
	Reductions int // number of prefix reduction steps applied
	MaxPrefix  int // high-water mark of live prefix length
	// MaxSendAhead is the deepest output anticipation observed: the largest
	// number of pending supertype actions a subtype send overtook when its
	// reduction matched (the entries the reordering sequence B(p) skipped).
	// It is 0 when the candidate performs no reordering, 1 for a single
	// hoisted send, and grows with the unroll depth of a pipelined source —
	// the static counterpart of the queue high-water mark that
	// sim.Result.MaxQueue observes dynamically, and the lookahead score the
	// optimiser ranks AMR candidates by.
	MaxSendAhead int
}

// Result is the outcome of a subtyping check.
type Result struct {
	OK    bool
	Stats Stats
	// Trace holds the derivation log when Options.Trace was set.
	Trace []string
}

// ErrNotDirected is returned when a machine mixes directions or peers within
// one state, which the local-type syntax of Definition 1 cannot express.
var ErrNotDirected = errors.New("core: machine is not directed (mixed send/receive or peers within a state)")

// ErrUnknownSort is returned when a machine's actions carry a payload sort
// nobody registered: neither a built-in scalar, a types.RegisterSort entry,
// nor a vector over a known element sort. Certifying a protocol whose sorts
// have no meaning would let a typo (vec<f65>) sail through verification and
// surface only as an `any`-typed generated API, so the checker refuses.
var ErrUnknownSort = errors.New("core: machine carries an unregistered payload sort (see types.RegisterSort)")

// unknownSorts returns the unregistered payload sorts on m's reachable
// transitions, in deterministic order without duplicates.
func unknownSorts(m *fsm.FSM) []types.Sort {
	var out []types.Sort
	seen := map[types.Sort]bool{}
	for s := 0; s < m.NumStates(); s++ {
		for _, t := range m.Transitions(fsm.State(s)) {
			if types.KnownSort(t.Act.Sort) || seen[t.Act.Sort] {
				continue
			}
			seen[t.Act.Sort] = true
			out = append(out, t.Act.Sort)
		}
	}
	return out
}

// Check reports whether sub is an asynchronous subtype of sup.
func Check(sub, sup *fsm.FSM, opts Options) (Result, error) {
	if !sub.Directed() {
		return Result{}, fmt.Errorf("%w: candidate subtype %s", ErrNotDirected, sub.Role())
	}
	if !sup.Directed() {
		return Result{}, fmt.Errorf("%w: supertype %s", ErrNotDirected, sup.Role())
	}
	if bad := unknownSorts(sub); len(bad) > 0 {
		return Result{}, fmt.Errorf("%w: candidate subtype %s carries %v", ErrUnknownSort, sub.Role(), bad)
	}
	if bad := unknownSorts(sup); len(bad) > 0 {
		return Result{}, fmt.Errorf("%w: supertype %s carries %v", ErrUnknownSort, sup.Role(), bad)
	}
	bound := opts.Bound
	if bound <= 0 {
		bound = DefaultBound
	}
	v := &visitor{
		sub:      sub,
		sup:      sup,
		history:  newHistory(sub.NumStates(), sup.NumStates(), bound),
		failFast: !opts.NoFailFast,
	}
	if opts.Trace {
		v.tr = &tracer{}
	}
	ok := v.visit(sub.Initial(), sup.Initial())
	res := Result{OK: ok, Stats: v.stats}
	if v.tr != nil {
		res.Trace = v.tr.lines
	}
	return res, nil
}

// CheckTypes is Check on local types: both are converted to machines for the
// given role first.
func CheckTypes(role types.Role, sub, sup types.Local, opts Options) (Result, error) {
	msub, err := fsm.FromLocal(role, sub)
	if err != nil {
		return Result{}, fmt.Errorf("core: subtype: %w", err)
	}
	msup, err := fsm.FromLocal(role, sup)
	if err != nil {
		return Result{}, fmt.Errorf("core: supertype: %w", err)
	}
	return Check(msub, msup, opts)
}

// previous is one cell of the history matrix: the remaining visit budget for
// a pair of states and, when the pair is on the current derivation path, the
// assumption made at its last visit (prefix snapshots plus the length of the
// subtype-action log ρ at that time).
type previous struct {
	visits int
	snaps  *assumption
}

// assumption corresponds to one entry of the map Σ of Fig. 5: it is keyed by
// the state pair (implicitly, by living in history[l][r]) together with the
// prefixes at assumption time (the snapshots), and stores ρ (here: the log
// length, from which ρ' — the subtype actions performed since — is derived).
type assumption struct {
	sub, sup snapshot
	rhoLen   int
}

func newHistory(nSub, nSup, bound int) [][]previous {
	h := make([][]previous, nSub)
	cells := make([]previous, nSub*nSup)
	for i := range h {
		h[i] = cells[i*nSup : (i+1)*nSup]
		for j := range h[i] {
			h[i][j].visits = bound
		}
	}
	return h
}

type visitor struct {
	sub, sup *fsm.FSM
	history  [][]previous
	pre      [2]prefix // 0: subtype prefix π, 1: supertype prefix π′
	rho      []fsm.Action
	failFast bool
	stats    Stats
	tr       *tracer
}

// visit implements one derivation step for ⟨π, T, n⟩ ≤ ⟨π′, T′, n′⟩ where T
// and T′ are the states ls and rs. It mutates the prefixes; the caller
// restores them via snapshots after the call returns.
func (v *visitor) visit(ls, rs fsm.State) bool {
	v.stats.Visits++
	// High-water mark of the prefix windows (an upper bound on live length;
	// exact counting would rescan both prefixes on every visit).
	if n := len(v.pre[0].entries) - v.pre[0].start + len(v.pre[1].entries) - v.pre[1].start; n > v.stats.MaxPrefix {
		v.stats.MaxPrefix = n
	}

	v.traceVisit(ls, rs)

	// (1) Reduce the pair of prefixes ([sub] with rules ⤳i, ⤳o, ⤳A, ⤳B).
	if !v.reduce() {
		v.traceRule("[sub]", "fail-early: blocked head can never reduce")
		return false // fail-early: a head can never be matched
	}

	prev := &v.history[ls][rs]

	// (2) Assumption rule [asm]: the same state pair is an ancestor on the
	// path with identical live prefixes, and the subtype has performed a
	// superset of the supertype's pending actions since (act(ρ′) ⊇ act(π′)).
	if a := prev.snaps; a != nil {
		if v.pre[0].liveEqualAt(a.sub) && v.pre[1].liveEqualAt(a.sup) && v.actCheck(a) {
			v.traceRule("[asm]", "assumption matches; act(ρ′) ⊇ act(π′)")
			return true
		}
	}

	ltr, rtr := v.sub.Transitions(ls), v.sup.Transitions(rs)

	// (3) Termination rule [end].
	if len(ltr) == 0 && len(rtr) == 0 {
		ok := v.pre[0].empty() && v.pre[1].empty()
		if ok {
			v.traceRule("[end]", "both terminal with empty prefixes")
		} else {
			v.traceRule("[end]", "terminal with pending prefixes: reject")
		}
		return ok
	}
	if len(ltr) == 0 || len(rtr) == 0 {
		v.traceRule("[end]", "one side terminal, the other not: reject")
		return false
	}

	// (4) Recursion-unrolling bound ([μl]/[μr] with n = 0).
	if prev.visits <= 0 {
		v.traceRule("[μ]", "recursion bound exhausted")
		return false
	}

	// (5) Pop one action from each machine and push it onto the prefixes,
	// per rules [oi], [oo], [ii], [io].
	saved := *prev
	prev.visits--
	prev.snaps = &assumption{sub: v.pre[0].snapshot(), sup: v.pre[1].snapshot(), rhoLen: len(v.rho)}
	defer func() { *prev = saved }()

	subOut := ltr[0].Act.Dir == fsm.Send
	supOut := rtr[0].Act.Dir == fsm.Send
	rule := ruleName(subOut, supOut)

	try := func(lt, rt fsm.Transition) bool {
		subSnap, supSnap, rhoLen := v.pre[0].snapshot(), v.pre[1].snapshot(), len(v.rho)
		v.pre[0].push(lt.Act)
		v.pre[1].push(rt.Act)
		v.rho = append(v.rho, lt.Act)
		v.traceRule(rule, fmt.Sprintf("push %s / %s", lt.Act, rt.Act))
		v.tr.push()
		ok := v.visit(lt.To, rt.To)
		v.tr.pop()
		v.pre[0].restore(subSnap)
		v.pre[1].restore(supSnap)
		v.rho = v.rho[:rhoLen]
		return ok
	}
	switch {
	case subOut && !supOut: // [oi]: ∀i ∀j
		for _, lt := range ltr {
			for _, rt := range rtr {
				if !try(lt, rt) {
					return false
				}
			}
		}
		return true
	case subOut && supOut: // [oo]: ∀i ∃j
		for _, lt := range ltr {
			ok := false
			for _, rt := range rtr {
				if try(lt, rt) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	case !subOut && !supOut: // [ii]: ∀j ∃i
		for _, rt := range rtr {
			ok := false
			for _, lt := range ltr {
				if try(lt, rt) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	default: // [io]: ∃i ∃j
		for _, lt := range ltr {
			for _, rt := range rtr {
				if try(lt, rt) {
					return true
				}
			}
		}
		return false
	}
}

// actCheck verifies act(ρ′) ⊇ act(π′): every pending supertype action's
// (direction, peer) occurs among the subtype actions performed since the
// assumption. This is the side condition of [asm] preventing "forgotten"
// interactions (Appendix B.3, Fig. A.14).
func (v *visitor) actCheck(a *assumption) bool {
	rho := v.rho[a.rhoLen:]
	sup := &v.pre[1]
	for i := sup.start; i < len(sup.entries); i++ {
		e := &sup.entries[i]
		if e.removed {
			continue
		}
		found := false
		for j := range rho {
			if rho[j].Dir == e.act.Dir && rho[j].Peer == e.act.Peer {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// reduce applies the prefix reduction rules of Definition 3 until no rule
// applies. It returns false when fail-fast is enabled and the subtype prefix
// head is permanently blocked: a matching action can never appear before the
// blocker, because prefixes only grow at the tail.
func (v *visitor) reduce() bool {
	l, r := &v.pre[0], &v.pre[1]
	for {
		if l.empty() {
			return true
		}
		h := l.head()
		idx, skipped, blocked := findMatch(r, h)
		if blocked {
			if v.failFast {
				return false
			}
			return true
		}
		if idx < 0 {
			return true // cannot reduce yet; more supertype actions may arrive
		}
		v.stats.Reductions++
		if h.Dir == fsm.Send && skipped > v.stats.MaxSendAhead {
			v.stats.MaxSendAhead = skipped
		}
		l.popHead()
		r.removeAt(idx)
	}
}

// findMatch scans the supertype prefix for the first live transition matching
// head h, skipping exactly the transitions the reordering sequences A(p) and
// B(p) permit. It returns the match index, or -1 if the scan ran off the end,
// the number of live transitions skipped before the match (the anticipation
// depth feeding Stats.MaxSendAhead), and blocked = true if an unskippable
// transition was found first.
//
//	h = p?ℓ: skip receives not from p (A(p)); blockers are any send, and any
//	         receive from p that does not match.
//	h = p!ℓ: skip all receives and sends not to p (B(p)); blockers are sends
//	         to p that do not match.
func findMatch(r *prefix, h fsm.Action) (int, int, bool) {
	skipped := 0
	for i := r.start; i < len(r.entries); i++ {
		e := &r.entries[i]
		if e.removed {
			continue
		}
		a := e.act
		if a.Dir == h.Dir && a.Peer == h.Peer {
			if a.Label == h.Label && sortOK(h, a) {
				return i, skipped, false
			}
			// Same peer and direction but a different label (or an
			// incompatible sort): this can never be skipped by A/B.
			return -1, skipped, true
		}
		if h.Dir == fsm.Recv && a.Dir == fsm.Send {
			return -1, skipped, true // sends block input anticipation
		}
		// Otherwise skippable: a receive (any peer ≠ p for inputs, any peer
		// for outputs) or, for outputs, a send to a different peer.
		skipped++
	}
	return -1, skipped, false
}

// sortOK checks payload-sort compatibility between the subtype's action h and
// the supertype's action a: outputs are covariant (the subtype may send a
// smaller sort), inputs contravariant (the subtype may accept a larger sort).
func sortOK(h, a fsm.Action) bool {
	if h.Dir == fsm.Send {
		return types.SubSort(h.Sort, a.Sort)
	}
	return types.SubSort(a.Sort, h.Sort)
}
