// Package baseline provides miniature session runtimes reproducing the cost
// models of the three Rust frameworks Rumpsteak is evaluated against in §4.1:
//
//   - Sesh: binary sessions, synchronous communication, and a fresh one-shot
//     channel allocated per interaction (the continuation channel travels
//     with each message);
//   - Ferrite: like Sesh but asynchronous — the sender does not wait for the
//     receiver — while still allocating a continuation channel per step;
//   - MultiCrusty: multiparty sessions represented as a mesh of binary Sesh
//     channels, one per pair of roles, all synchronous with per-interaction
//     allocation.
//
// The Rumpsteak-analogue runtime (package session) instead keeps one
// persistent unbounded queue per ordered pair and never blocks on send; the
// throughput gap between these designs is what Fig. 6 measures.
package baseline

import (
	"fmt"

	"repro/internal/types"
)

// Style selects a baseline cost model.
type Style int

const (
	// Sesh is binary + synchronous + per-interaction channel allocation.
	Sesh Style = iota
	// Ferrite is binary + asynchronous + per-interaction channel allocation.
	Ferrite
	// MultiCrusty is multiparty-as-binary-mesh + synchronous +
	// per-interaction channel allocation.
	MultiCrusty
)

func (s Style) String() string {
	switch s {
	case Sesh:
		return "sesh"
	case Ferrite:
		return "ferrite"
	case MultiCrusty:
		return "multicrusty"
	default:
		return "unknown"
	}
}

// Synchronous reports whether the style blocks senders until reception.
func (s Style) Synchronous() bool { return s != Ferrite }

// packet carries one message plus the continuation channel for the next
// interaction, mirroring how Sesh threads its one-shot channels.
type packet struct {
	label types.Label
	value any
	next  *Chan
}

// Chan is one endpoint of a one-shot binary session channel in
// continuation-passing style: Send and Recv consume the channel and return
// the continuation. Both sides of a pair hold the same *Chan.
type Chan struct {
	ch    chan packet
	async bool
}

// NewPair allocates a fresh one-shot channel; both participants of a binary
// session share it. async selects the Ferrite cost model (buffered by one),
// otherwise the sender blocks until reception (Sesh, MultiCrusty).
func NewPair(async bool) *Chan {
	return newChan(async)
}

func newChan(async bool) *Chan {
	capacity := 0
	if async {
		capacity = 1
	}
	return &Chan{ch: make(chan packet, capacity), async: async}
}

// Send transmits label(value) and returns the continuation channel. The
// continuation is freshly allocated here — the per-interaction allocation
// cost the baselines pay and Rumpsteak avoids.
func (c *Chan) Send(label types.Label, value any) *Chan {
	next := newChan(c.async)
	c.ch <- packet{label: label, value: value, next: next}
	return next
}

// Recv blocks for the next message and returns it with the continuation
// channel.
func (c *Chan) Recv() (types.Label, any, *Chan) {
	p := <-c.ch
	return p.label, p.value, p.next
}

// RecvLabel is Recv with a label assertion, for protocols without branching.
func (c *Chan) RecvLabel(want types.Label) (any, *Chan, error) {
	label, value, next := c.Recv()
	if label != want {
		return nil, next, fmt.Errorf("baseline: expected label %s, got %s", want, label)
	}
	return value, next, nil
}

// Mesh is the MultiCrusty representation of a multiparty session: one binary
// channel per unordered pair of roles, threaded in continuation-passing
// style. Each role's endpoint tracks the current channel for every peer.
type Mesh struct {
	endpoints map[types.Role]*MeshEndpoint
}

// NewMesh wires a full mesh over the given roles. async selects the Ferrite
// cost model for each pairwise channel (used when representing a multiparty
// protocol as binary Ferrite sessions, as §4.1 does for double buffering).
func NewMesh(async bool, roles ...types.Role) *Mesh {
	m := &Mesh{endpoints: map[types.Role]*MeshEndpoint{}}
	for _, r := range roles {
		m.endpoints[r] = &MeshEndpoint{role: r, peers: map[types.Role]*Chan{}}
	}
	for i, a := range roles {
		for _, b := range roles[i+1:] {
			ch := NewPair(async)
			m.endpoints[a].peers[b] = ch
			m.endpoints[b].peers[a] = ch
		}
	}
	return m
}

// Endpoint returns the endpoint for a role, or nil if unknown.
func (m *Mesh) Endpoint(role types.Role) *MeshEndpoint { return m.endpoints[role] }

// MeshEndpoint is one role's view of a MultiCrusty-style session. Not safe
// for concurrent use; each role runs in its own goroutine.
type MeshEndpoint struct {
	role  types.Role
	peers map[types.Role]*Chan
}

// Role returns the endpoint's role.
func (e *MeshEndpoint) Role() types.Role { return e.role }

// Send transmits to a peer over the current pairwise channel and threads the
// continuation.
func (e *MeshEndpoint) Send(to types.Role, label types.Label, value any) error {
	ch, ok := e.peers[to]
	if !ok {
		return fmt.Errorf("baseline: %s has no channel to %s", e.role, to)
	}
	e.peers[to] = ch.Send(label, value)
	return nil
}

// Recv blocks for the next message from a peer and threads the continuation.
func (e *MeshEndpoint) Recv(from types.Role) (types.Label, any, error) {
	ch, ok := e.peers[from]
	if !ok {
		return "", nil, fmt.Errorf("baseline: %s has no channel to %s", e.role, from)
	}
	label, value, next := ch.Recv()
	e.peers[from] = next
	return label, value, nil
}

// RecvLabel is Recv with a label assertion.
func (e *MeshEndpoint) RecvLabel(from types.Role, want types.Label) (any, error) {
	label, value, err := e.Recv(from)
	if err != nil {
		return nil, err
	}
	if label != want {
		return nil, fmt.Errorf("baseline: %s expected %s from %s, got %s", e.role, want, from, label)
	}
	return value, nil
}
