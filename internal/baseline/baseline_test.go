package baseline

import (
	"testing"
)

func TestSeshPingPong(t *testing.T) {
	ch := NewPair(false)
	done := make(chan int)
	go func() {
		label, v, next := ch.Recv()
		if label != "ping" {
			t.Errorf("label = %s", label)
		}
		next.Send("pong", v.(int)+1)
		done <- 0
	}()
	next := ch.Send("ping", 1)
	label, v, _ := next.Recv()
	if label != "pong" || v.(int) != 2 {
		t.Errorf("got %s %v", label, v)
	}
	<-done
}

func TestSynchronousSendBlocks(t *testing.T) {
	ch := NewPair(false)
	sent := make(chan struct{})
	go func() {
		ch.Send("m", nil)
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("synchronous send completed without receiver")
	default:
	}
	ch.Recv()
	<-sent
}

func TestFerriteSendDoesNotBlock(t *testing.T) {
	ch := NewPair(true)
	next := ch.Send("m", 1) // must not block
	label, v, _ := ch.Recv()
	if label != "m" || v.(int) != 1 {
		t.Errorf("got %s %v", label, v)
	}
	_ = next
}

func TestRecvLabel(t *testing.T) {
	ch := NewPair(true)
	ch.Send("a", 7)
	v, _, err := ch.RecvLabel("a")
	if err != nil || v.(int) != 7 {
		t.Fatalf("RecvLabel = %v %v", v, err)
	}
	ch2 := NewPair(true)
	ch2.Send("b", nil)
	if _, _, err := ch2.RecvLabel("a"); err == nil {
		t.Error("wrong label accepted")
	}
}

func TestStyleStrings(t *testing.T) {
	if Sesh.String() != "sesh" || Ferrite.String() != "ferrite" || MultiCrusty.String() != "multicrusty" {
		t.Error("style names wrong")
	}
	if Style(99).String() != "unknown" {
		t.Error("unknown style name")
	}
	if !Sesh.Synchronous() || Ferrite.Synchronous() || !MultiCrusty.Synchronous() {
		t.Error("synchrony flags wrong")
	}
}

func TestMeshThreeParty(t *testing.T) {
	m := NewMesh(false, "k", "s", "t")
	if m.Endpoint("zz") != nil {
		t.Error("unknown role returned an endpoint")
	}
	const iters = 20
	errs := make(chan error, 3)
	// One iteration of the double-buffering loop per round, MultiCrusty
	// style: every interaction is a fresh synchronous binary channel.
	go func() {
		e := m.Endpoint("k")
		for i := 0; i < iters; i++ {
			if err := e.Send("s", "ready", nil); err != nil {
				errs <- err
				return
			}
			v, err := e.RecvLabel("s", "value")
			if err != nil {
				errs <- err
				return
			}
			if _, err := e.RecvLabel("t", "ready"); err != nil {
				errs <- err
				return
			}
			if err := e.Send("t", "value", v); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	go func() {
		e := m.Endpoint("s")
		for i := 0; i < iters; i++ {
			if _, err := e.RecvLabel("k", "ready"); err != nil {
				errs <- err
				return
			}
			if err := e.Send("k", "value", i); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	sunk := make([]int, 0, iters)
	go func() {
		e := m.Endpoint("t")
		for i := 0; i < iters; i++ {
			if err := e.Send("k", "ready", nil); err != nil {
				errs <- err
				return
			}
			v, err := e.RecvLabel("k", "value")
			if err != nil {
				errs <- err
				return
			}
			sunk = append(sunk, v.(int))
		}
		errs <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if len(sunk) != iters {
		t.Fatalf("sink received %d", len(sunk))
	}
	for i, v := range sunk {
		if v != i {
			t.Fatalf("sunk[%d] = %d", i, v)
		}
	}
}

func TestMeshUnknownPeer(t *testing.T) {
	m := NewMesh(false, "a", "b")
	e := m.Endpoint("a")
	if e.Role() != "a" {
		t.Errorf("Role = %s", e.Role())
	}
	if err := e.Send("zz", "l", nil); err == nil {
		t.Error("send to unknown peer accepted")
	}
	if _, _, err := e.Recv("zz"); err == nil {
		t.Error("recv from unknown peer accepted")
	}
}

func TestMeshRecvLabelMismatch(t *testing.T) {
	m := NewMesh(true, "a", "b")
	a, b := m.Endpoint("a"), m.Endpoint("b")
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvLabel("a", "y"); err == nil {
		t.Error("label mismatch accepted")
	}
}
