package protocols

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestAutoReproducesOrBeatsHandWritten is the cross-check closing the loop
// between the hand-transcribed Optimised tables and the automatic optimiser:
// for every registry entry with a hand-written AMR table, and for every role
// in it whose hand-written rewrite the bounded algorithm itself certifies,
// the derived endpoint must certify too and reach at least the hand-written
// lookahead (subtype-equivalent or strictly deeper anticipation). Entries
// whose hand-written rewrite is beyond the bounded algorithm (Hospital needs
// unbounded anticipation — Table 1's point) are exempt from the comparison
// but must still never make the optimiser emit an uncertified rewrite.
func TestAutoReproducesOrBeatsHandWritten(t *testing.T) {
	for _, e := range Registry() {
		if len(e.Optimised) == 0 {
			continue
		}
		auto := e.AutoOptimised()
		for r, hand := range e.Optimised {
			handCert, err := core.CheckTypes(r, hand, e.Locals[r], core.Options{Bound: 16})
			if err != nil {
				t.Fatalf("%s/%s: hand-written check: %v", e.Name, r, err)
			}
			derived, ok := auto[r]
			if !handCert.OK {
				// Hand-written beyond the bounded algorithm: the optimiser
				// must not have pretended otherwise.
				if ok {
					cert, err := core.CheckTypes(r, derived, e.Locals[r], core.Options{Bound: 16})
					if err != nil || !cert.OK {
						t.Errorf("%s/%s: derived endpoint %s is not certified", e.Name, r, derived)
					}
				}
				continue
			}
			if !ok {
				t.Errorf("%s/%s: hand-written optimisation certifies (lookahead %d) but the optimiser derived nothing",
					e.Name, r, handCert.Stats.MaxSendAhead)
				continue
			}
			cert, err := core.CheckTypes(r, derived, e.Locals[r], core.Options{Bound: 16})
			if err != nil || !cert.OK {
				t.Errorf("%s/%s: derived endpoint %s does not certify: ok=%v err=%v", e.Name, r, derived, cert.OK, err)
				continue
			}
			if cert.Stats.MaxSendAhead < handCert.Stats.MaxSendAhead {
				t.Errorf("%s/%s: derived lookahead %d below hand-written %d (derived %s)",
					e.Name, r, cert.Stats.MaxSendAhead, handCert.Stats.MaxSendAhead, derived)
			}
		}
	}
}

// TestAutoSystemsStayLive executes every machine-optimised system under the
// asynchronous simulator: a certified swap must never introduce a deadlock
// or an orphan message, for any schedule.
func TestAutoSystemsStayLive(t *testing.T) {
	seeds := []int64{1, 7, 42}
	for _, e := range Registry() {
		if len(e.AutoOptimised()) == 0 {
			continue
		}
		machines := Machines(FSMs(e.AutoSystem()))
		if _, err := sim.HighWater(machines, 4000, seeds); err != nil {
			t.Errorf("%s: auto-optimised system: %v", e.Name, err)
		}
	}
}

// TestAutoRunsAheadDynamically confirms the static lookahead score means
// what it claims: the derived streaming source drives the source→sink queue
// strictly higher than the projection does, under identical schedules.
func TestAutoRunsAheadDynamically(t *testing.T) {
	e := Streaming()
	auto := e.AutoOptimised()
	if _, ok := auto[types.Role("s")]; !ok {
		t.Fatal("no derived source for the streaming protocol")
	}
	seeds := []int64{1, 2, 3, 4, 5}
	before, err := sim.HighWater(Machines(FSMs(e.Locals)), 4000, seeds)
	if err != nil {
		t.Fatal(err)
	}
	after, err := sim.HighWater(Machines(FSMs(e.AutoSystem())), 4000, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("derived source queue high-water %d not above projection's %d", after, before)
	}
}

// TestAutoOptimisedCached pins the memoisation contract: repeated calls for
// the same entry return the identical derived map.
func TestAutoOptimisedCached(t *testing.T) {
	a := Streaming().AutoOptimised()
	b := Streaming().AutoOptimised()
	if len(a) != len(b) {
		t.Fatalf("cache returned different maps: %v vs %v", a, b)
	}
	for r, l := range a {
		if b[r] == nil || b[r].String() != l.String() {
			t.Errorf("cache mismatch for role %s", r)
		}
	}
}
