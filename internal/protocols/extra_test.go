package protocols

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kmc"
	"repro/internal/project"
	"repro/internal/sim"
	"repro/internal/types"
)

func TestExtraRegistryWellFormed(t *testing.T) {
	for _, e := range ExtraRegistry() {
		if e.Global != nil {
			if err := types.ValidateGlobal(e.Global); err != nil {
				t.Errorf("%s: global: %v", e.Name, err)
			}
		}
		if len(e.Locals) != e.Participants {
			t.Errorf("%s: %d locals, %d participants", e.Name, len(e.Locals), e.Participants)
		}
		for r, l := range e.Locals {
			if err := types.ValidateLocal(l); err != nil {
				t.Errorf("%s/%s: %v", e.Name, r, err)
			}
		}
	}
}

func TestExtraLocalsMatchProjections(t *testing.T) {
	for _, e := range ExtraRegistry() {
		if e.Global == nil {
			continue
		}
		projs, err := project.ProjectAll(e.Global)
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		for r, want := range projs {
			got := e.Locals[r]
			if got == nil {
				t.Errorf("%s: missing local for %s", e.Name, r)
				continue
			}
			if !types.EqualLocal(types.NormalizeLocal(got), types.NormalizeLocal(want)) {
				t.Errorf("%s/%s: local %s != projection %s", e.Name, r, got, want)
			}
		}
	}
}

func TestExtraSystemsVerifyAndExecute(t *testing.T) {
	for _, e := range ExtraRegistry() {
		// Optimised endpoints verify against their projections.
		for r, opt := range e.Optimised {
			res, err := core.CheckTypes(r, opt, e.Locals[r], core.Options{Bound: 8})
			if err != nil || !res.OK {
				t.Errorf("%s/%s: optimisation rejected (err=%v)", e.Name, r, err)
			}
		}
		// The executed system is k-MC.
		sys, err := kmc.NewSystem(Machines(FSMs(e.System()))...)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if _, res := kmc.CheckUpTo(sys, e.KmcBound); !res.OK {
			t.Errorf("%s: not %d-MC: %v", e.Name, e.KmcBound, res.Violation)
		}
		// And it executes without sticking under several schedules.
		ms := Machines(FSMs(e.System()))
		for seed := int64(0); seed < 10; seed++ {
			if _, err := sim.Run(ms, 2000, seed); err != nil {
				t.Errorf("%s (seed %d): %v", e.Name, seed, err)
				break
			}
		}
	}
}

func TestScatterGatherAMR(t *testing.T) {
	// The scatter-all-then-gather coordinator refines the per-worker
	// interleaved one — the fan-out optimisation as asynchronous subtyping.
	for _, n := range []int{1, 2, 4, 8} {
		scattered := ScatterGather(n).Locals["c"]
		interleaved := SequentialScatterGather(n)
		res, err := core.CheckTypes("c", scattered, interleaved, core.Options{Bound: 2*n + 4})
		if err != nil || !res.OK {
			t.Errorf("n=%d: scattered coordinator rejected (err=%v)", n, err)
		}
		// The reverse does not hold: the interleaved coordinator delays its
		// later tasks, which the scattered supertype's peers may depend on.
		rev, err := core.CheckTypes("c", interleaved, scattered, core.Options{Bound: 2*n + 4})
		if err != nil {
			t.Fatal(err)
		}
		if n > 1 && rev.OK {
			t.Errorf("n=%d: interleaved ≤ scattered unexpectedly accepted", n)
		}
	}
}

func TestPipelineGrowth(t *testing.T) {
	for _, n := range []int{2, 3, 6} {
		e := PipelineEntry(n)
		if len(e.Locals) != n {
			t.Fatalf("pipeline %d has %d locals", n, len(e.Locals))
		}
		if n > 2 && len(e.Optimised) != n-2 {
			t.Errorf("pipeline %d has %d optimised stages, want %d", n, len(e.Optimised), n-2)
		}
	}
}

func TestTwoBuyerBothOutcomes(t *testing.T) {
	// Run the two-buyer protocol through the simulator for enough seeds that
	// both outcomes (buy/quit) occur.
	e := TwoBuyer()
	ms := Machines(FSMs(e.Locals))
	terminated := 0
	for seed := int64(0); seed < 20; seed++ {
		res, err := sim.Run(ms, 100, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Terminated {
			terminated++
		}
	}
	if terminated != 20 {
		t.Errorf("only %d/20 runs terminated", terminated)
	}
}
