package protocols

import (
	"fmt"

	"repro/internal/fsm"
	"repro/internal/types"
)

// This file defines the parameterised protocol families benchmarked in
// Fig. 7 of the paper.

// StreamingUnrolled returns the subtyping instance of the Fig. 7 streaming
// benchmark: the optimised source unrolls n value sends ahead of their
// readys. It returns (optimised, projected) local types for the source.
func StreamingUnrolled(n int) (sub, sup types.Local) {
	sup = types.MustParse("mu x.t?ready.t!value.x")
	sub = sup
	for i := 0; i < n; i++ {
		sub = types.LSend("t", "value", types.Unit, sub)
	}
	return sub, sup
}

// StreamingUnrolledSystem returns the optimised source machine together with
// the sink, the system the k-MC tool checks for the same benchmark. The
// system is k-MC only for k > n, so callers pass bound n+1.
func StreamingUnrolledSystem(n int) []*fsm.FSM {
	sub, _ := StreamingUnrolled(n)
	source := fsm.MustFromLocal("s", sub)
	sink := fsm.MustFromLocal("t", types.MustParse("mu x.s!ready.s?value.x"))
	return []*fsm.FSM{source, sink}
}

// KBuffering generalises double buffering to n buffers (Fig. 7's last plot):
// the kernel unrolls n ready sends ahead. It returns (optimised, projected)
// local types for the kernel.
func KBuffering(n int) (sub, sup types.Local) {
	sup = types.MustParse("mu x.s!ready.s?value.t?ready.t!value.x")
	sub = sup
	for i := 0; i < n; i++ {
		sub = types.LSend("s", "ready", types.Unit, sub)
	}
	return sub, sup
}

// KBufferingSystem returns the optimised kernel with the source and sink of
// the double-buffering protocol, for the k-MC side of the benchmark.
func KBufferingSystem(n int) []*fsm.FSM {
	sub, _ := KBuffering(n)
	kernel := fsm.MustFromLocal("k", sub)
	source := fsm.MustFromLocal("s", types.MustParse("mu x.k?ready.k!value.x"))
	sink := fsm.MustFromLocal("t", types.MustParse("mu x.k!ready.k?value.x"))
	return []*fsm.FSM{kernel, source, sink}
}

// NestedChoice builds the nested-choice family of Chen et al. [13, Fig. 3],
// as used in Fig. 7:
//
//	T₀ = T′₀ = end
//	Tₙ₊₁  = !m.(?r.Tₙ & ?s.Tₙ & ?u.Tₙ) ⊕ !p.(?r.Tₙ & ?s.Tₙ)
//	T′ₙ₊₁ = ?r.(!m.T′ₙ ⊕ !p.T′ₙ ⊕ !q.T′ₙ) & ?s.(!m.T′ₙ ⊕ !p.T′ₙ)
//
// It returns (Tₙ, T′ₙ); the benchmark checks Tₙ ≤ T′ₙ.
func NestedChoice(n int) (sub, sup types.Local) {
	const o = types.Role("o")
	sub, sup = types.End{}, types.End{}
	for i := 0; i < n; i++ {
		inputsBig := types.Recv{Peer: o, Branches: []types.Branch{
			{Label: "r", Sort: types.Unit, Cont: sub},
			{Label: "s", Sort: types.Unit, Cont: sub},
			{Label: "u", Sort: types.Unit, Cont: sub},
		}}
		inputsSmall := types.Recv{Peer: o, Branches: []types.Branch{
			{Label: "r", Sort: types.Unit, Cont: sub},
			{Label: "s", Sort: types.Unit, Cont: sub},
		}}
		sub = types.Send{Peer: o, Branches: []types.Branch{
			{Label: "m", Sort: types.Unit, Cont: inputsBig},
			{Label: "p", Sort: types.Unit, Cont: inputsSmall},
		}}

		outBig := types.Send{Peer: o, Branches: []types.Branch{
			{Label: "m", Sort: types.Unit, Cont: sup},
			{Label: "p", Sort: types.Unit, Cont: sup},
			{Label: "q", Sort: types.Unit, Cont: sup},
		}}
		outSmall := types.Send{Peer: o, Branches: []types.Branch{
			{Label: "m", Sort: types.Unit, Cont: sup},
			{Label: "p", Sort: types.Unit, Cont: sup},
		}}
		sup = types.Recv{Peer: o, Branches: []types.Branch{
			{Label: "r", Sort: types.Unit, Cont: outBig},
			{Label: "s", Sort: types.Unit, Cont: outSmall},
		}}
	}
	return sub, sup
}

// NestedChoiceSystem returns the pair {Tₙ-machine, dual-of-T′ₙ-machine} used
// for the k-MC side of the nested-choice benchmark.
func NestedChoiceSystem(n int) []*fsm.FSM {
	sub, sup := NestedChoice(n)
	self := fsm.MustFromLocal("o2", sub)
	peer := fsm.MustFromLocal("o", dualOf(renamePeer(sup, "o", "o2")))
	return []*fsm.FSM{self, peer}
}

// RingRole returns the role name of ring participant i.
func RingRole(i int) types.Role { return types.Role(fmt.Sprintf("r%d", i)) }

// RingN builds the n-participant ring of Fig. 7: participant 0 initiates by
// sending to participant 1; every other participant receives from its
// predecessor and sends to its successor; participant 0 finally receives
// from participant n-1. One round, repeated forever.
//
// It returns the projected locals and the AMR-optimised locals (everyone
// sends before receiving).
func RingN(n int) (plain, optimised map[types.Role]types.Local) {
	if n < 2 {
		panic("protocols: ring needs at least 2 participants")
	}
	plain = map[types.Role]types.Local{}
	optimised = map[types.Role]types.Local{}
	for i := 0; i < n; i++ {
		succ := RingRole((i + 1) % n)
		pred := RingRole((i + n - 1) % n)
		send := func(cont types.Local) types.Local { return types.LSend(succ, "v", types.Unit, cont) }
		recv := func(cont types.Local) types.Local { return types.LRecv(pred, "v", types.Unit, cont) }
		if i == 0 {
			plain[RingRole(i)] = types.Rec{Name: "t", Body: send(recv(types.Var{Name: "t"}))}
		} else {
			plain[RingRole(i)] = types.Rec{Name: "t", Body: recv(send(types.Var{Name: "t"}))}
		}
		optimised[RingRole(i)] = types.Rec{Name: "t", Body: send(recv(types.Var{Name: "t"}))}
	}
	return plain, optimised
}

// RingNSystem returns the optimised ring machines for the k-MC side of the
// benchmark.
func RingNSystem(n int) []*fsm.FSM {
	_, opt := RingN(n)
	out := make([]*fsm.FSM, n)
	for i := 0; i < n; i++ {
		out[i] = fsm.MustFromLocal(RingRole(i), opt[RingRole(i)])
	}
	return out
}

// dualOf returns the syntactic dual of a local type: sends become receives
// and vice versa, labels and structure unchanged.
func dualOf(t types.Local) types.Local {
	switch t := t.(type) {
	case types.End, types.Var:
		return t
	case types.Rec:
		return types.Rec{Name: t.Name, Body: dualOf(t.Body)}
	case types.Send:
		return types.Recv{Peer: t.Peer, Branches: dualBranches(t.Branches)}
	case types.Recv:
		return types.Send{Peer: t.Peer, Branches: dualBranches(t.Branches)}
	default:
		panic(fmt.Sprintf("protocols: unknown local type %T", t))
	}
}

func dualBranches(bs []types.Branch) []types.Branch {
	out := make([]types.Branch, len(bs))
	for i, b := range bs {
		out[i] = types.Branch{Label: b.Label, Sort: b.Sort, Cont: dualOf(b.Cont)}
	}
	return out
}

// renamePeer rewrites every occurrence of peer from to to in t.
func renamePeer(t types.Local, from, to types.Role) types.Local {
	switch t := t.(type) {
	case types.End, types.Var:
		return t
	case types.Rec:
		return types.Rec{Name: t.Name, Body: renamePeer(t.Body, from, to)}
	case types.Send:
		return types.Send{Peer: renameRole(t.Peer, from, to), Branches: renameBranches(t.Branches, from, to)}
	case types.Recv:
		return types.Recv{Peer: renameRole(t.Peer, from, to), Branches: renameBranches(t.Branches, from, to)}
	default:
		panic(fmt.Sprintf("protocols: unknown local type %T", t))
	}
}

func renameRole(r, from, to types.Role) types.Role {
	if r == from {
		return to
	}
	return r
}

func renameBranches(bs []types.Branch, from, to types.Role) []types.Branch {
	out := make([]types.Branch, len(bs))
	for i, b := range bs {
		out[i] = types.Branch{Label: b.Label, Sort: b.Sort, Cont: renamePeer(b.Cont, from, to)}
	}
	return out
}

// Dual exposes dualOf for tests and the k-MC harness.
func Dual(t types.Local) types.Local { return dualOf(t) }

// RenamePeer exposes renamePeer for the harness.
func RenamePeer(t types.Local, from, to types.Role) types.Local { return renamePeer(t, from, to) }
