// Package protocols is the library of every protocol evaluated in the paper:
// the seventeen rows of Table 1, plus the parameterised families benchmarked
// in Fig. 7 (streaming unrolls, nested choice, rings of n participants,
// k-buffering). Each entry carries the global type (when one exists), the
// endpoint types per role, the AMR-optimised endpoints (when the paper
// optimises the protocol) and the feature flags of Table 1's left columns.
package protocols

import (
	"fmt"
	"sync"

	"repro/internal/fsm"
	"repro/internal/optimise"
	"repro/internal/types"
)

// Entry is one protocol of Table 1.
type Entry struct {
	// Name as printed in Table 1.
	Name string
	// Ref is the paper's citation tag for the protocol's origin.
	Ref string
	// Participants is the column n.
	Participants int
	// Global is the protocol's global type; nil for protocols that exist
	// only as endpoint types (bottom-up only, e.g. Hospital).
	Global types.Global
	// Locals maps each role to its endpoint type (the projection when Global
	// is set; hand-written otherwise).
	Locals map[types.Role]types.Local
	// Optimised maps roles to their AMR-optimised endpoint types. Empty when
	// the row is not an optimised variant.
	Optimised map[types.Role]types.Local
	// Feature flags: the C, R, IR and AMR columns.
	Choice, Rec, InfiniteRec, AMR bool
	// KmcBound is the queue bound at which the (optimised) system is
	// expected to be k-MC; CheckUpTo is run up to this bound.
	KmcBound int
}

// System returns the endpoint types actually executed: Locals overridden by
// Optimised where present.
func (e Entry) System() map[types.Role]types.Local {
	out := map[types.Role]types.Local{}
	for r, l := range e.Locals {
		out[r] = l
	}
	for r, l := range e.Optimised {
		out[r] = l
	}
	return out
}

// autoCache memoises machine-derived optimisations per entry name: every
// Registry() call rebuilds Entry values, but the derivation for a named
// protocol is deterministic, so it runs once per process.
var autoCache sync.Map // string -> map[types.Role]types.Local

// AutoOptimised returns the machine-derived AMR endpoints for the entry: for
// every role, internal/optimise searches hoisting/pipelining rewrites of the
// projected local type and certifies candidates with the asynchronous
// subtyping algorithm; roles appear in the map only when a certified rewrite
// strictly improves the static lookahead. The result is derived once per
// entry name and cached — the automatic counterpart of the hand-written
// Optimised tables (and, for every registry entry, at least as deep a
// lookahead; see the cross-check in auto_test.go).
func (e Entry) AutoOptimised() map[types.Role]types.Local {
	if v, ok := autoCache.Load(e.Name); ok {
		return v.(map[types.Role]types.Local)
	}
	out := map[types.Role]types.Local{}
	for r, l := range e.Locals {
		res, err := optimise.Optimise(r, l, optimise.Options{})
		if err != nil {
			// The registry is static data (as in FSMs): a type that cannot
			// even pass its reflexive certificate is a malformed entry, not
			// a missing optimisation — failing silently here would print as
			// an empty Auto cell in Table 1.
			panic(fmt.Sprintf("protocols: deriving %s/%s: %v", e.Name, r, err))
		}
		if res.Improved {
			out[r] = res.Best.Type
		}
	}
	actual, _ := autoCache.LoadOrStore(e.Name, out)
	return actual.(map[types.Role]types.Local)
}

// AutoSystem returns the endpoint types of the machine-optimised system:
// Locals overridden by AutoOptimised.
func (e Entry) AutoSystem() map[types.Role]types.Local {
	out := map[types.Role]types.Local{}
	for r, l := range e.Locals {
		out[r] = l
	}
	for r, l := range e.AutoOptimised() {
		out[r] = l
	}
	return out
}

// FSMs converts a role→local-type map into machines, panicking on malformed
// entries (the registry is static data).
func FSMs(locals map[types.Role]types.Local) map[types.Role]*fsm.FSM {
	out := map[types.Role]*fsm.FSM{}
	for r, l := range locals {
		out[r] = fsm.MustFromLocal(r, l)
	}
	return out
}

// Machines flattens a role→FSM map into a deterministic slice (sorted by
// role), as the k-MC checker expects.
func Machines(ms map[types.Role]*fsm.FSM) []*fsm.FSM {
	var roles []types.Role
	for r := range ms {
		roles = append(roles, r)
	}
	for i := 1; i < len(roles); i++ {
		for j := i; j > 0 && roles[j] < roles[j-1]; j-- {
			roles[j], roles[j-1] = roles[j-1], roles[j]
		}
	}
	out := make([]*fsm.FSM, len(roles))
	for i, r := range roles {
		out[i] = ms[r]
	}
	return out
}

// mp and mpg are terse parser aliases for building the registry.
func mp(src string) types.Local   { return types.MustParse(src) }
func mpg(src string) types.Global { return types.MustParseGlobal(src) }
func rl(src string) types.Role    { return types.Role(src) }
func locals(kv ...any) map[types.Role]types.Local {
	out := map[types.Role]types.Local{}
	for i := 0; i < len(kv); i += 2 {
		out[rl(kv[i].(string))] = kv[i+1].(types.Local)
	}
	return out
}

// Registry returns the seventeen Table 1 rows, in the paper's order.
func Registry() []Entry {
	return []Entry{
		TwoAdder(),
		ThreeAdder(),
		Streaming(),
		OptimisedStreaming(),
		Ring(),
		OptimisedRing(),
		RingWithChoice(),
		OptimisedRingWithChoice(),
		DoubleBuffering(),
		OptimisedDoubleBuffering(),
		AlternatingBit(),
		Elevator(),
		FFT(),
		OptimisedFFT(),
		Authentication(),
		ClientServerLog(),
		Hospital(),
	}
}

// Find returns the registry entry whose name matches, ignoring case and
// non-alphanumeric characters: "Double Buffering", "doublebuffering" and
// "double-buffering" all name the same row. Exact Table 1 names always
// match.
func Find(name string) (Entry, bool) {
	want := foldName(name)
	for _, e := range Registry() {
		if foldName(e.Name) == want {
			return e, true
		}
	}
	return Entry{}, false
}

// foldName lower-cases and strips everything but letters and digits.
func foldName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			out = append(out, r)
		}
	}
	return string(out)
}

// TwoAdder is the two-party adder of the νScr examples: a client repeatedly
// sends two integers and receives their sum, or says bye.
func TwoAdder() Entry {
	g := mpg("mu t.c->s:{add(i32).c->s:num(i32).s->c:sum(i32).t, bye.s->c:bye.end}")
	return Entry{
		Name: "Two Adder", Ref: "[2]", Participants: 2,
		Global: g,
		Locals: locals(
			"c", mp("mu t.s!{add(i32).s!num(i32).s?sum(i32).t, bye.s?bye.end}"),
			"s", mp("mu t.c?{add(i32).c?num(i32).c!sum(i32).t, bye.c!bye.end}"),
		),
		Choice: true, Rec: true, KmcBound: 2,
	}
}

// ThreeAdder splits the addition across three parties in a line.
func ThreeAdder() Entry {
	g := mpg("a->b:num(i32).b->c:num(i32).c->a:sum(i32).end")
	return Entry{
		Name: "Three Adder", Ref: "", Participants: 3,
		Global: g,
		Locals: locals(
			"a", mp("b!num(i32).c?sum(i32).end"),
			"b", mp("a?num(i32).c!num(i32).end"),
			"c", mp("b?num(i32).a!sum(i32).end"),
		),
		KmcBound: 1,
	}
}

// Streaming is GST of §2.1/§4.1: a sink requests values until the source
// stops.
func Streaming() Entry {
	g := mpg("mu x.t->s:ready.s->t:{value(i32).x, stop.end}")
	return Entry{
		Name: "Streaming", Ref: "", Participants: 2,
		Global: g,
		Locals: locals(
			"s", mp("mu x.t?ready.t!{value(i32).x, stop.end}"),
			"t", mp("mu x.s!ready.s?{value(i32).x, stop.end}"),
		),
		Choice: true, Rec: true, KmcBound: 1,
	}
}

// OptimisedStreaming unrolls one value ahead of its ready (AMR), consuming
// the outstanding ready after stopping.
func OptimisedStreaming() Entry {
	e := Streaming()
	e.Name, e.Ref = "Optimised Streaming", ""
	e.Optimised = locals(
		"s", mp("t!value(i32).mu x.t?ready.t!{value(i32).x, stop.t?ready.end}"),
	)
	e.AMR = true
	e.KmcBound = 2
	return e
}

// Ring is the three-participant ring of [11]: a value circulates forever.
func Ring() Entry {
	g := mpg("mu t.a->b:v.b->c:v.c->a:v.t")
	return Entry{
		Name: "Ring", Ref: "[11]", Participants: 3,
		Global: g,
		Locals: locals(
			"a", mp("mu t.b!v.c?v.t"),
			"b", mp("mu t.a?v.c!v.t"),
			"c", mp("mu t.b?v.a!v.t"),
		),
		Rec: true, InfiniteRec: true, KmcBound: 1,
	}
}

// OptimisedRing lets b and c send to their successors before receiving (AMR).
func OptimisedRing() Entry {
	e := Ring()
	e.Name = "Optimised Ring"
	e.Optimised = locals(
		"b", mp("mu t.c!v.a?v.t"),
		"c", mp("mu t.a!v.b?v.t"),
	)
	e.AMR = true
	e.KmcBound = 2
	return e
}

// RingWithChoice is the Appendix B.2.1 ring: b relays a's add as either add
// or sub towards c.
func RingWithChoice() Entry {
	g := mpg("mu t.a->b:add.b->c:{add.c->a:add.t, sub.c->a:add.t}")
	return Entry{
		Name: "Ring With Choice", Ref: "[11]", Participants: 3,
		Global: g,
		Locals: locals(
			"a", mp("mu t.b!add.c?add.t"),
			"b", mp("mu t.a?add.c!{add.t, sub.t}"),
			"c", mp("mu t.b?{add.a!add.t, sub.a!add.t}"),
		),
		Choice: true, Rec: true, InfiniteRec: true, KmcBound: 1,
	}
}

// OptimisedRingWithChoice is the worked subtyping example of Appendix B.4:
// b chooses and sends before receiving from a.
func OptimisedRingWithChoice() Entry {
	e := RingWithChoice()
	e.Name = "Optimised Ring With Choice"
	e.Optimised = locals(
		"b", mp("mu t.c!{add.a?add.t, sub.a?add.t}"),
	)
	e.AMR = true
	e.KmcBound = 2
	return e
}

// DoubleBuffering is the running example (Listing 1): a kernel moves values
// from a source to a sink.
func DoubleBuffering() Entry {
	g := mpg("mu x.k->s:ready.s->k:value.t->k:ready.k->t:value.x")
	return Entry{
		Name: "Double Buffering", Ref: "[11]", Participants: 3,
		Global: g,
		Locals: locals(
			"k", mp("mu x.s!ready.s?value.t?ready.t!value.x"),
			"s", mp("mu x.k?ready.k!value.x"),
			"t", mp("mu x.k!ready.k?value.x"),
		),
		Rec: true, InfiniteRec: true, KmcBound: 1,
	}
}

// OptimisedDoubleBuffering sends the second ready ahead (§2.1, Fig. 4b), so
// the source fills one buffer while the sink drains the other.
func OptimisedDoubleBuffering() Entry {
	e := DoubleBuffering()
	e.Name, e.Ref = "Optimised Double Buffering", "[11, 33]"
	e.Optimised = locals(
		"k", mp("s!ready.mu x.s!ready.s?value.t?ready.t!value.x"),
	)
	e.AMR = true
	e.KmcBound = 2
	return e
}

// AlternatingBit is the classic protocol, with the receiver specification of
// Appendix B.4 as the optimised endpoint.
func AlternatingBit() Entry {
	g := mpg("mu t.s->r:d0.r->s:{a0.mu u.s->r:d1.r->s:{a0.u, a1.t}, a1.t}")
	return Entry{
		Name: "Alternating Bit", Ref: "[1, 43]", Participants: 2,
		Global: g,
		Locals: locals(
			"s", mp("mu t.r!d0.r?{a0.mu u.r!d1.r?{a0.u, a1.t}, a1.t}"),
			"r", mp("mu t.s?d0.s!{a0.mu u.s?d1.s!{a0.u, a1.t}, a1.t}"),
		),
		Optimised: locals(
			"r", mp("mu t.s?{d0.s!a0.t, d1.s!a1.t}"),
		),
		Choice: true, Rec: true, InfiniteRec: true, AMR: true, KmcBound: 2,
	}
}

// Elevator is a three-party control loop (after [6, 43]): a panel reports
// up/down calls, the controller cycles the door. The optimised controller
// opens the door while the next call is still in flight.
func Elevator() Entry {
	g := mpg("mu t.p->e:{up.e->d:open.d->e:done.t, down.e->d:open.d->e:done.t}")
	return Entry{
		Name: "Elevator", Ref: "[6, 43]", Participants: 3,
		Global: g,
		Locals: locals(
			"p", mp("mu t.e!{up.t, down.t}"),
			"e", mp("mu t.p?{up.d!open.d?done.t, down.d!open.d?done.t}"),
			"d", mp("mu t.e?open.e!done.t"),
		),
		Optimised: locals(
			"e", mp("mu t.d!open.p?{up.d?done.t, down.d?done.t}"),
		),
		Choice: true, Rec: true, InfiniteRec: true, AMR: true, KmcBound: 2,
	}
}

// FFT is the eight-process butterfly exchange of [11]: three stages in which
// each process swaps its column with its hypercube partner. See FFTGlobal.
func FFT() Entry {
	g := FFTGlobal()
	ls, _ := fftLocals()
	return Entry{
		Name: "FFT", Ref: "[11]", Participants: 8,
		Global:   g,
		Locals:   ls,
		KmcBound: 1,
	}
}

// OptimisedFFT lets the lower partner of each butterfly send before receiving
// (AMR), overlapping the two halves of every exchange.
func OptimisedFFT() Entry {
	e := FFT()
	e.Name = "Optimised FFT"
	_, opt := fftLocals()
	e.Optimised = opt
	e.AMR = true
	e.KmcBound = 2
	return e
}

// Authentication is the three-party protocol of [48]: a client logs in via
// an authenticator which instructs the service to accept or reject.
func Authentication() Entry {
	g := mpg("c->a:login(str).a->s:{auth.s->c:ok.end, deny.s->c:fail.end}")
	return Entry{
		Name: "Authentication", Ref: "[48]", Participants: 3,
		Global: g,
		Locals: locals(
			"c", mp("a!login(str).s?{ok.end, fail.end}"),
			"a", mp("c?login(str).s!{auth.end, deny.end}"),
			"s", mp("a?{auth.c!ok.end, deny.c!fail.end}"),
		),
		Choice: true, KmcBound: 1,
	}
}

// ClientServerLog is the logging protocol of [41]: a server answers client
// requests while streaming a log to a third party.
func ClientServerLog() Entry {
	g := mpg("mu t.c->s:{req(str).s->l:log(str).s->c:resp(str).t, quit.s->l:shutdown.end}")
	return Entry{
		Name: "Client-Server Log", Ref: "[41]", Participants: 3,
		Global: g,
		Locals: locals(
			"c", mp("mu t.s!{req(str).s?resp(str).t, quit.end}"),
			"s", mp("mu t.c?{req(str).l!log(str).c!resp(str).t, quit.l!shutdown.end}"),
			"l", mp("mu t.s?{log(str).t, shutdown.end}"),
		),
		Choice: true, Rec: true, KmcBound: 1,
	}
}

// Hospital is the binary protocol of [7, §1]: a patient streams unboundedly
// many readings before collecting acknowledgements. The optimisation needs
// unbounded anticipation, so neither bounded subtyping nor k-MC can verify
// it; SoundBinary can (Table 1's final row). There is no global type — the
// endpoints are written directly (bottom-up).
func Hospital() Entry {
	return Entry{
		Name: "Hospital", Ref: "[7]", Participants: 2,
		Locals: locals(
			"p", mp("mu t.h!{d.h?ok.t, stop.h?done.end}"),
			"h", mp("mu t.p?{d.p!ok.t, stop.p!done.end}"),
		),
		Optimised: locals(
			"p", mp("mu t.h!{d.t, stop.mu u.h?{ok.u, done.end}}"),
		),
		Choice: true, Rec: true, InfiniteRec: true, AMR: true, KmcBound: 3,
	}
}

// FFTColumnSort is the payload sort of the butterfly exchanges: a whole
// column of complex samples travels as one message. Earlier revisions
// smuggled the []complex128 columns under a scalar f64 sort, which barred
// the typed generated API from covering FFT; the sort registry makes the
// vector sort first-class (Go binding []complex128, derived from the
// complex128 built-in).
var FFTColumnSort = types.VecOf(types.Complex128)

// FFTGlobal builds the 24-interaction global type of the eight-point
// butterfly: for every stage span ∈ {4, 2, 1} and every pair {j, j⊕span}
// with j < j⊕span, the lower process sends its column then receives its
// partner's.
func FFTGlobal() types.Global {
	var g types.Global = types.GEnd{}
	// Build back to front.
	spans := []int{1, 2, 4}
	for _, span := range spans {
		for j := 7; j >= 0; j-- {
			p := j ^ span
			if j > p {
				continue
			}
			lo, hi := fftRole(j), fftRole(p)
			g = types.GComm(lo, hi, "col", FFTColumnSort, types.GComm(hi, lo, "col", FFTColumnSort, g))
		}
	}
	return g
}

func fftRole(j int) types.Role { return types.Role(fmt.Sprintf("w%d", j)) }

// FFTRoles returns the eight worker roles w0..w7.
func FFTRoles() []types.Role {
	out := make([]types.Role, 8)
	for j := range out {
		out[j] = fftRole(j)
	}
	return out
}

// fftLocals builds each worker's endpoint type and its AMR-optimised variant
// (send before receive at every stage).
func fftLocals() (plain, optimised map[types.Role]types.Local) {
	plain = map[types.Role]types.Local{}
	optimised = map[types.Role]types.Local{}
	for j := 0; j < 8; j++ {
		var tail types.Local = types.End{}
		var optTail types.Local = types.End{}
		for _, span := range []int{1, 2, 4} { // build back to front
			p := fftRole(j ^ span)
			if j < j^span {
				// Lower index sends first in the global order.
				tail = types.LSend(p, "col", FFTColumnSort, types.LRecv(p, "col", FFTColumnSort, tail))
			} else {
				tail = types.LRecv(p, "col", FFTColumnSort, types.LSend(p, "col", FFTColumnSort, tail))
			}
			optTail = types.LSend(p, "col", FFTColumnSort, types.LRecv(p, "col", FFTColumnSort, optTail))
		}
		plain[fftRole(j)] = tail
		optimised[fftRole(j)] = optTail
	}
	return plain, optimised
}
