package protocols

import (
	"fmt"

	"repro/internal/types"
)

// This file extends the registry beyond the paper's Table 1 with classic
// MPST case studies from the literature the paper builds on. They are not
// part of the reproduced evaluation, but they exercise the toolchain —
// projection, subtyping, k-MC, execution — on richer shapes (fan-out/fan-in,
// nested recursion, delegated decisions) and ship as ready-made protocols
// for library users.

// ExtraRegistry returns the additional protocols. Entries follow the same
// conventions as Registry.
func ExtraRegistry() []Entry {
	return []Entry{
		TwoBuyer(),
		TravelAgency(),
		ScatterGather(4),
		PipelineEntry(4),
		OAuthLike(),
	}
}

// TwoBuyer is the classic two-buyer protocol (Honda, Yoshida, Carbone): b1
// asks a seller for a quote, shares the price with b2, and b2 decides to buy
// or quit.
func TwoBuyer() Entry {
	g := mpg(`b1->s:title(str).s->b1:quote(i32).b1->b2:share(i32).
	          b2->s:{buy(str).s->b2:date(str).end, quit.end}`)
	return Entry{
		Name: "Two Buyer", Ref: "[29]", Participants: 3,
		Global: g,
		Locals: locals(
			"b1", mp("s!title(str).s?quote(i32).b2!share(i32).end"),
			"b2", mp("b1?share(i32).s!{buy(str).s?date(str).end, quit.end}"),
			"s", mp("b1?title(str).b1!quote(i32).b2?{buy(str).b2!date(str).end, quit.end}"),
		),
		Choice: true, KmcBound: 1,
	}
}

// TravelAgency is the customer/agency/service booking protocol: the customer
// haggles in a loop, then either accepts (and the service confirms directly
// to the customer) or rejects. The service hears a hold message on every
// haggling round, keeping the protocol projectable onto the observer.
func TravelAgency() Entry {
	g := mpg(`mu t.c->a:{query(str).a->s:hold.a->c:price(i32).t,
	                     accept.a->s:book(str).s->c:confirm(i32).end,
	                     reject.a->s:cancel.s->c:bye.end}`)
	return Entry{
		Name: "Travel Agency", Ref: "[31]", Participants: 3,
		Global: g,
		Locals: locals(
			"c", mp("mu t.a!{query(str).a?price(i32).t, accept.s?confirm(i32).end, reject.s?bye.end}"),
			"a", mp("mu t.c?{query(str).s!hold.c!price(i32).t, accept.s!book(str).end, reject.s!cancel.end}"),
			"s", mp("mu t.a?{hold.t, book(str).c!confirm(i32).end, cancel.c!bye.end}"),
		),
		Choice: true, Rec: true, KmcBound: 1,
	}
}

// ScatterGather is a coordinator fanning a task out to n workers and
// gathering their results — the fan-out/fan-in shape of map-reduce rounds.
// The AMR optimisation lets the coordinator scatter *all* tasks before
// gathering any result; the unoptimised projection interleaves them.
func ScatterGather(n int) Entry {
	if n < 1 {
		panic("protocols: scatter-gather needs at least one worker")
	}
	// Global: task to w1 .. task to wn, then result from w1 .. wn.
	var g types.Global = types.GEnd{}
	for i := n - 1; i >= 0; i-- {
		g = types.GComm(sgWorker(i), "c", "result", types.I64, g)
	}
	for i := n - 1; i >= 0; i-- {
		g = types.GComm("c", sgWorker(i), "task", types.I64, g)
	}
	ls := map[types.Role]types.Local{}
	// Coordinator projection: all sends in order, then all receives (the
	// global order above already scatters first — so the projection is
	// itself the optimised schedule; the *sequential* coordinator used as
	// the baseline interleaves task/result per worker).
	var coord types.Local = types.End{}
	for i := n - 1; i >= 0; i-- {
		coord = types.LRecv(sgWorker(i), "result", types.I64, coord)
	}
	for i := n - 1; i >= 0; i-- {
		coord = types.LSend(sgWorker(i), "task", types.I64, coord)
	}
	ls["c"] = coord
	for i := 0; i < n; i++ {
		ls[sgWorker(i)] = types.LRecv("c", "task", types.I64,
			types.LSend("c", "result", types.I64, types.End{}))
	}
	return Entry{
		Name: fmt.Sprintf("Scatter-Gather (%d workers)", n), Ref: "", Participants: n + 1,
		Global:   g,
		Locals:   ls,
		KmcBound: 1,
	}
}

func sgWorker(i int) types.Role { return types.Role(fmt.Sprintf("w%d", i)) }

// SequentialScatterGather returns the *interleaved* coordinator type
// (task/result per worker in turn) for the same workers: the supertype that
// the scattered coordinator of ScatterGather(n) refines. Used by tests to
// show AMR verifying a fan-out optimisation.
func SequentialScatterGather(n int) types.Local {
	var coord types.Local = types.End{}
	for i := n - 1; i >= 0; i-- {
		coord = types.LSend(sgWorker(i), "task", types.I64,
			types.LRecv(sgWorker(i), "result", types.I64, coord))
	}
	return coord
}

// PipelineEntry is an n-stage pipeline: stage i receives from its
// predecessor and forwards to its successor, forever.
func PipelineEntry(n int) Entry {
	if n < 2 {
		panic("protocols: pipeline needs at least 2 stages")
	}
	var body types.Global = types.GVar{Name: "t"}
	for i := n - 2; i >= 0; i-- {
		body = types.GComm(plStage(i), plStage(i+1), "item", types.I64, body)
	}
	g := types.GRec{Name: "t", Body: body}
	ls := map[types.Role]types.Local{}
	for i := 0; i < n; i++ {
		var l types.Local
		switch i {
		case 0:
			l = types.Rec{Name: "t", Body: types.LSend(plStage(1), "item", types.I64, types.Var{Name: "t"})}
		case n - 1:
			l = types.Rec{Name: "t", Body: types.LRecv(plStage(n-2), "item", types.I64, types.Var{Name: "t"})}
		default:
			l = types.Rec{Name: "t", Body: types.LRecv(plStage(i-1), "item", types.I64,
				types.LSend(plStage(i+1), "item", types.I64, types.Var{Name: "t"}))}
		}
		ls[plStage(i)] = l
	}
	// AMR for interior stages: forward the previous item before waiting for
	// the next — a one-item software pipeline register.
	opt := map[types.Role]types.Local{}
	for i := 1; i < n-1; i++ {
		opt[plStage(i)] = types.LSend(plStage(i+1), "item", types.I64, ls[plStage(i)])
	}
	return Entry{
		Name: fmt.Sprintf("Pipeline (%d stages)", n), Ref: "", Participants: n,
		Global:    g,
		Locals:    ls,
		Optimised: opt,
		Rec:       true, InfiniteRec: true, AMR: len(opt) > 0, KmcBound: 2,
	}
}

func plStage(i int) types.Role { return types.Role(fmt.Sprintf("p%d", i)) }

// OAuthLike is a three-party authorisation dance with nested choice: the
// client asks an authoriser, which may challenge (loop), grant (introducing
// the resource) or refuse. The resource server is told about every retry
// (wait) so that the protocol stays projectable — the standard mergeability
// fix for observers of a loop.
func OAuthLike() Entry {
	g := mpg(`mu t.c->a:{request(str).a->c:{challenge(str).a->r:wait.c->a:answer(str).t,
	                                        grant.a->r:token(str).r->c:resource(str).end,
	                                        refuse.a->r:deny.r->c:sorry.end}}`)
	return Entry{
		Name: "OAuth-like", Ref: "", Participants: 3,
		Global: g,
		Locals: locals(
			"c", mp("mu t.a!request(str).a?{challenge(str).a!answer(str).t, grant.r?resource(str).end, refuse.r?sorry.end}"),
			"a", mp("mu t.c?request(str).c!{challenge(str).r!wait.c?answer(str).t, grant.r!token(str).end, refuse.r!deny.end}"),
			"r", mp("mu t.a?{wait.t, token(str).c!resource(str).end, deny.c!sorry.end}"),
		),
		Choice: true, Rec: true, KmcBound: 1,
	}
}
