package protocols

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kmc"
	"repro/internal/project"
	"repro/internal/soundbinary"
	"repro/internal/types"
)

func TestRegistryWellFormed(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d rows, want 17 (Table 1)", len(reg))
	}
	for _, e := range reg {
		if e.Global != nil {
			if err := types.ValidateGlobal(e.Global); err != nil {
				t.Errorf("%s: global: %v", e.Name, err)
			}
			if got := len(types.Roles(e.Global)); got != e.Participants {
				t.Errorf("%s: global has %d roles, entry says %d", e.Name, got, e.Participants)
			}
		}
		if len(e.Locals) != e.Participants {
			t.Errorf("%s: %d locals, %d participants", e.Name, len(e.Locals), e.Participants)
		}
		for r, l := range e.Locals {
			if err := types.ValidateLocal(l); err != nil {
				t.Errorf("%s: local %s: %v", e.Name, r, err)
			}
		}
		for r, l := range e.Optimised {
			if err := types.ValidateLocal(l); err != nil {
				t.Errorf("%s: optimised %s: %v", e.Name, r, err)
			}
			if _, ok := e.Locals[r]; !ok {
				t.Errorf("%s: optimised role %s has no baseline local", e.Name, r)
			}
		}
		if e.AMR != (len(e.Optimised) > 0) {
			t.Errorf("%s: AMR flag inconsistent with optimised set", e.Name)
		}
	}
}

func TestLocalsMatchProjections(t *testing.T) {
	// For every entry with a global type, the registered locals must be
	// exactly the projections — they are the FSMs M of Fig. 1a.
	for _, e := range Registry() {
		if e.Global == nil {
			continue
		}
		projs, err := project.ProjectAll(e.Global)
		if err != nil {
			t.Errorf("%s: projection failed: %v", e.Name, err)
			continue
		}
		for r, want := range projs {
			got, ok := e.Locals[r]
			if !ok {
				t.Errorf("%s: missing local for %s", e.Name, r)
				continue
			}
			if !types.EqualLocal(types.NormalizeLocal(got), types.NormalizeLocal(want)) {
				t.Errorf("%s: local for %s = %s, projection = %s", e.Name, r, got, want)
			}
		}
	}
}

func TestOptimisationsVerifiedBySubtyping(t *testing.T) {
	// Every optimised endpoint must be an asynchronous subtype of its
	// baseline — except Hospital, whose optimisation needs unbounded
	// anticipation and is expected to exceed any bound (the amber cell of
	// Table 1).
	for _, e := range Registry() {
		for r, opt := range e.Optimised {
			res, err := core.CheckTypes(r, opt, e.Locals[r], core.Options{Bound: 8})
			if err != nil {
				t.Errorf("%s/%s: %v", e.Name, r, err)
				continue
			}
			if e.Name == "Hospital" {
				if res.OK {
					t.Errorf("Hospital: bounded algorithm unexpectedly verified unbounded anticipation")
				}
				continue
			}
			if !res.OK {
				t.Errorf("%s: optimised %s is not a subtype of its projection", e.Name, r)
			}
		}
	}
}

func TestSystemsAreKMC(t *testing.T) {
	// Every runnable system (locals overridden by optimised endpoints) must
	// be k-MC within the registered bound — except Hospital.
	for _, e := range Registry() {
		sys, err := kmc.NewSystem(Machines(FSMs(e.System()))...)
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		k, res := kmc.CheckUpTo(sys, e.KmcBound)
		if e.Name == "Hospital" {
			if res.OK {
				t.Error("Hospital: k-MC unexpectedly succeeded")
			}
			continue
		}
		if !res.OK {
			t.Errorf("%s: not %d-MC: %v", e.Name, e.KmcBound, res.Violation)
		} else {
			t.Logf("%s: %d-MC with %d configs", e.Name, k, res.Configs)
		}
	}
}

func TestUnoptimisedSystemsAreKMC(t *testing.T) {
	// The baseline systems (pure projections) are all 1-MC except the
	// alternating-bit (whose optimised receiver is part of the row) — check
	// the plain locals too.
	for _, e := range Registry() {
		if e.Name == "Hospital" {
			continue // the plain hospital locals are fine; included below
		}
		sys, err := kmc.NewSystem(Machines(FSMs(e.Locals))...)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		_, res := kmc.CheckUpTo(sys, 2)
		if !res.OK {
			t.Errorf("%s: projected system not 2-MC: %v", e.Name, res.Violation)
		}
	}
	// Plain hospital (alternating) is 1-MC.
	h := Hospital()
	sys, err := kmc.NewSystem(Machines(FSMs(h.Locals))...)
	if err != nil {
		t.Fatal(err)
	}
	if res := kmc.Check(sys, 1); !res.OK {
		t.Errorf("plain hospital not 1-MC: %v", res.Violation)
	}
}

func TestHospitalSoundBinary(t *testing.T) {
	h := Hospital()
	res, err := soundbinary.CheckTypes("p", h.Optimised["p"], h.Locals["p"], soundbinary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Error("SoundBinary rejected the hospital optimisation")
	}
}

func TestStreamingUnrolledFamily(t *testing.T) {
	for _, n := range []int{0, 1, 5, 25} {
		sub, sup := StreamingUnrolled(n)
		res, err := core.CheckTypes("s", sub, sup, core.Options{Bound: 2*n + 8})
		if err != nil || !res.OK {
			t.Errorf("unroll %d rejected (err=%v)", n, err)
		}
		sys, err := kmc.NewSystem(StreamingUnrolledSystem(n)...)
		if err != nil {
			t.Fatal(err)
		}
		// For n ≥ 2, k = 1 is not exhaustive: while the source is still
		// mid-unroll the sink's next ready can never fire. The bound must
		// grow with the unroll depth — exactly why the k-MC side of Fig. 7
		// scales with n.
		if n >= 2 {
			if res := kmc.Check(sys, 1); res.OK {
				t.Errorf("unroll %d system unexpectedly 1-MC", n)
			}
		}
		if res := kmc.Check(sys, n+1); !res.OK {
			t.Errorf("unroll %d system not %d-MC: %v", n, n+1, res.Violation)
		}
	}
}

func TestKBufferingFamily(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		sub, sup := KBuffering(n)
		res, err := core.CheckTypes("k", sub, sup, core.Options{Bound: 2*n + 8})
		if err != nil || !res.OK {
			t.Errorf("k-buffering %d rejected (err=%v)", n, err)
		}
		sys, err := kmc.NewSystem(KBufferingSystem(n)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, res := kmc.CheckUpTo(sys, n+1); !res.OK {
			t.Errorf("k-buffering %d system rejected: %v", n, res.Violation)
		}
	}
}

func TestNestedChoiceFamily(t *testing.T) {
	for n := 1; n <= 3; n++ {
		sub, sup := NestedChoice(n)
		if err := types.ValidateLocal(sub); err != nil {
			t.Fatalf("T%d invalid: %v", n, err)
		}
		res, err := core.CheckTypes("self", sub, sup, core.Options{Bound: 8})
		if err != nil || !res.OK {
			t.Errorf("nested choice %d rejected (err=%v)", n, err)
		}
		sys, err := kmc.NewSystem(NestedChoiceSystem(n)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, res := kmc.CheckUpTo(sys, 2); !res.OK {
			t.Errorf("nested choice %d system rejected: %v", n, res.Violation)
		}
	}
}

func TestRingNFamily(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		plain, opt := RingN(n)
		if len(plain) != n || len(opt) != n {
			t.Fatalf("ring %d has wrong size", n)
		}
		// Each optimised participant is a subtype of its projection.
		for i := 0; i < n; i++ {
			r := RingRole(i)
			res, err := core.CheckTypes(r, opt[r], plain[r], core.Options{Bound: 8})
			if err != nil || !res.OK {
				t.Errorf("ring %d: participant %s rejected (err=%v)", n, r, err)
			}
		}
		// The optimised system is 1-MC (one value in flight per edge).
		sys, err := kmc.NewSystem(RingNSystem(n)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, res := kmc.CheckUpTo(sys, 2); !res.OK {
			t.Errorf("ring %d system rejected: %v", n, res.Violation)
		}
	}
}

func TestDualAndRename(t *testing.T) {
	orig := types.MustParse("mu t.o!{a.o?b.t, c.end}")
	d := Dual(orig)
	want := types.MustParse("mu t.o?{a.o!b.t, c.end}")
	if !types.EqualLocal(d, want) {
		t.Errorf("Dual = %s, want %s", d, want)
	}
	if !types.EqualLocal(Dual(d), orig) {
		t.Error("Dual not involutive")
	}
	rn := RenamePeer(orig, "o", "z")
	want2 := types.MustParse("mu t.z!{a.z?b.t, c.end}")
	if !types.EqualLocal(rn, want2) {
		t.Errorf("RenamePeer = %s", rn)
	}
}

func TestFFTGlobalShape(t *testing.T) {
	g := FFTGlobal()
	if err := types.ValidateGlobal(g); err != nil {
		t.Fatal(err)
	}
	roles := types.Roles(g)
	if len(roles) != 8 {
		t.Fatalf("FFT global has %d roles", len(roles))
	}
	// 24 interactions: walk the spine.
	count := 0
	cur := g
	for {
		c, ok := cur.(types.Comm)
		if !ok {
			break
		}
		count++
		cur = c.Branches[0].Cont
	}
	if count != 24 {
		t.Errorf("FFT global has %d interactions, want 24", count)
	}
}

func TestSystemOverride(t *testing.T) {
	e := OptimisedDoubleBuffering()
	sys := e.System()
	if types.EqualLocal(sys["k"], e.Locals["k"]) {
		t.Error("System did not apply the optimised kernel")
	}
	if !types.EqualLocal(sys["s"], e.Locals["s"]) {
		t.Error("System changed an unoptimised role")
	}
}
