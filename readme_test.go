package repro

import (
	"os"
	"strings"
	"testing"
)

// TestReadmeQuickstartCompiles pins the README's quickstart listing to
// examples/quickstart/main.go byte for byte. The example package is built
// by tier-1 (`go build ./...`), so the snippet in the README compiles
// as-is — if either side drifts, this fails with instructions instead of
// letting the front door rot.
func TestReadmeQuickstartCompiles(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md: %v", err)
	}
	const open, close_ = "```go\n", "```"
	i := strings.Index(string(readme), open)
	if i < 0 {
		t.Fatalf("README.md has no ```go code block")
	}
	rest := string(readme)[i+len(open):]
	j := strings.Index(rest, close_)
	if j < 0 {
		t.Fatalf("README.md ```go block is unterminated")
	}
	snippet := rest[:j]

	example, err := os.ReadFile("examples/quickstart/main.go")
	if err != nil {
		t.Fatalf("examples/quickstart/main.go: %v", err)
	}
	if snippet != string(example) {
		t.Fatalf("the README quickstart listing differs from examples/quickstart/main.go;\n" +
			"update one to match the other (the README promises the listing verbatim)")
	}
}
