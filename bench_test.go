// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation with `go test -bench`:
//
//	BenchmarkFig6Streaming        Fig. 6 (left):   runtime throughput, streaming
//	BenchmarkFig6DoubleBuffering  Fig. 6 (middle): runtime throughput, double buffering
//	BenchmarkFig6FFT              Fig. 6 (right):  runtime throughput, FFT (+ sequential)
//	BenchmarkFig7Streaming        Fig. 7 (1): subtype-check time vs unrolls
//	BenchmarkFig7NestedChoice     Fig. 7 (2): subtype-check time vs nesting depth
//	BenchmarkFig7Ring             Fig. 7 (3): verification time vs participants
//	BenchmarkFig7KBuffering       Fig. 7 (4): verification time vs buffers
//	BenchmarkTable1               Table 1: full expressiveness classification
//	BenchmarkOptimiseRegistry     automatic AMR derivation across the registry
//
// Sub-benchmark names carry the series (tool or runtime) and the x value, so
// `go test -bench Fig7Ring -benchmem` prints one row per plotted point. The
// cmd/fig6, cmd/fig7 and cmd/table1 binaries print the same data as CSV.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/optimise"
	"repro/internal/protocols"
)

// fig6Point runs one runtime benchmark configuration under b.N.
func fig6Point(b *testing.B, work int, f func() (int, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		n, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no work performed")
		}
	}
	// Report throughput in the paper's unit (items per microsecond).
	b.ReportMetric(float64(work)*float64(b.N)/float64(b.Elapsed().Microseconds()+1), "n/us")
}

func BenchmarkFig6Streaming(b *testing.B) {
	for _, rt := range bench.Runtimes {
		for _, n := range []int{10, 30, 50} {
			b.Run(fmt.Sprintf("%s/n=%d", rt, n), func(b *testing.B) {
				fig6Point(b, n, func() (int, error) { return bench.Streaming(rt, n, 5) })
			})
		}
	}
}

func BenchmarkFig6DoubleBuffering(b *testing.B) {
	for _, rt := range bench.Runtimes {
		for _, n := range []int{5000, 15000, 25000} {
			b.Run(fmt.Sprintf("%s/n=%d", rt, n), func(b *testing.B) {
				fig6Point(b, 2*n, func() (int, error) { return bench.DoubleBuffering(rt, n) })
			})
		}
	}
}

func BenchmarkFig6FFT(b *testing.B) {
	for _, rt := range bench.Runtimes {
		for _, n := range []int{1000, 3000, 5000} {
			b.Run(fmt.Sprintf("%s/n=%d", rt, n), func(b *testing.B) {
				fig6Point(b, n, func() (int, error) { return bench.FFTParallel(rt, n) })
			})
		}
	}
	for _, n := range []int{1000, 3000, 5000} {
		b.Run(fmt.Sprintf("rustfft-analogue/n=%d", n), func(b *testing.B) {
			fig6Point(b, n, func() (int, error) { return bench.FFTSequential(n) })
		})
	}
}

// fig7Point times one verifier at one parameter value.
func fig7Point(b *testing.B, f func() error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Streaming(b *testing.B) {
	for _, v := range []bench.Verifier{bench.SoundBinary, bench.KMC, bench.RumpsteakSubtyping} {
		for _, n := range []int{0, 20, 50, 100} {
			if v == bench.KMC && n > 50 {
				continue // the global product exceeds a sensible bench budget
			}
			b.Run(fmt.Sprintf("%s/n=%d", v, n), func(b *testing.B) {
				fig7Point(b, func() error { return bench.VerifyStreaming(v, n) })
			})
		}
	}
}

func BenchmarkFig7NestedChoice(b *testing.B) {
	for _, v := range []bench.Verifier{bench.SoundBinary, bench.KMC, bench.RumpsteakSubtyping} {
		for n := 1; n <= 4; n++ {
			b.Run(fmt.Sprintf("%s/n=%d", v, n), func(b *testing.B) {
				fig7Point(b, func() error { return bench.VerifyNestedChoice(v, n) })
			})
		}
	}
}

func BenchmarkFig7Ring(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("k-mc/n=%d", n), func(b *testing.B) {
			fig7Point(b, func() error { return bench.VerifyRing(bench.KMC, n) })
		})
	}
	// The local algorithm scales to the paper's full range.
	for _, n := range []int{2, 10, 20, 30} {
		b.Run(fmt.Sprintf("rumpsteak/n=%d", n), func(b *testing.B) {
			fig7Point(b, func() error { return bench.VerifyRing(bench.RumpsteakSubtyping, n) })
		})
	}
}

func BenchmarkFig7KBuffering(b *testing.B) {
	for _, n := range []int{0, 20, 50, 100} {
		if n <= 20 {
			b.Run(fmt.Sprintf("k-mc/n=%d", n), func(b *testing.B) {
				fig7Point(b, func() error { return bench.VerifyKBuffering(bench.KMC, n) })
			})
		}
		b.Run(fmt.Sprintf("rumpsteak/n=%d", n), func(b *testing.B) {
			fig7Point(b, func() error { return bench.VerifyKBuffering(bench.RumpsteakSubtyping, n) })
		})
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if len(rows) != 17 {
			b.Fatalf("expected 17 rows, got %d", len(rows))
		}
	}
}

// BenchmarkOptimiseRegistry measures the automatic optimiser end to end —
// candidate search plus certification — over every role of every Table 1
// protocol (uncached: the per-entry memo in protocols.AutoOptimised is
// bypassed by calling the optimiser directly).
func BenchmarkOptimiseRegistry(b *testing.B) {
	reg := protocols.Registry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range reg {
			for r, l := range e.Locals {
				if _, err := optimise.Optimise(r, l, optimise.Options{}); err != nil {
					b.Fatalf("%s/%s: %v", e.Name, r, err)
				}
			}
		}
	}
}
